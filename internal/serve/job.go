// Package serve is the simulation service: a long-running, stdlib-only
// HTTP server that accepts simulation jobs — Monte Carlo sweeps, chaos
// campaigns, exhaustive verification runs, scenario-script replays — as
// canonical JSON specs, schedules them over sharded worker queues, and
// memoises results in a content-addressed cache.
//
// The cache is sound, not heuristic, because the simulator is
// deterministic by construction (machine-enforced by the majorcanlint
// determinism analyzer): a job's canonical spec fully determines its
// result, so the SHA-256 of the normalized spec is a true content
// address. Identical in-flight jobs are coalesced single-flight style;
// identical completed jobs are served from the cache without
// re-simulating.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/verify"
)

// SpecVersion guards the job-spec wire format.
const SpecVersion = 1

// Kind names a job class.
type Kind string

const (
	// KindSweep is a Monte Carlo consistency sweep (sim.SweepSpec).
	KindSweep Kind = "sweep"
	// KindCampaign is a randomised fault-injection campaign
	// (chaos.CampaignSpec).
	KindCampaign Kind = "campaign"
	// KindVerify is an exhaustive verification pass (verify.Spec).
	KindVerify Kind = "verify"
	// KindScript replays one deterministic fault script (chaos.Script).
	KindScript Kind = "script"
)

// JobSpec is the canonical job description the service accepts: a kind
// tag plus exactly one kind-matching payload. The same codec backs the
// mcsim and chaos CLIs (-spec), so a spec file runs identically locally
// and through the service.
type JobSpec struct {
	Version  int                 `json:"version"`
	Kind     Kind                `json:"kind"`
	Sweep    *sim.SweepSpec      `json:"sweep,omitempty"`
	Campaign *chaos.CampaignSpec `json:"campaign,omitempty"`
	Verify   *verify.Spec        `json:"verify,omitempty"`
	Script   *chaos.Script       `json:"script,omitempty"`
}

// Digest is the content address of a normalized job spec: the SHA-256 of
// its canonical JSON, in hex. Equal digests mean equal jobs, and — the
// simulator being deterministic — equal results.
type Digest string

// Short returns an abbreviated digest for logs and progress lines.
func (d Digest) Short() string {
	if len(d) > 12 {
		return string(d[:12])
	}
	return string(d)
}

// Valid reports whether d is a well-formed content address: exactly 64
// lowercase hex digits, the form Canonical produces. Everything that
// accepts a digest from outside (the URL path, the spool) must check
// this first — a digest that fails Valid can never name a job, and an
// unchecked one could smuggle path separators into spool lookups.
func (d Digest) Valid() bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DecodeSpec strictly parses a job spec (unknown fields are errors, so
// typos cannot silently change a job's content address), normalizes it
// and validates it.
func DecodeSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("serve: bad job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: bad job spec: trailing data after JSON object")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalize fills defaults in place (spec version, kind payload
// defaults) so that specs differing only in spelled-out defaults
// canonicalise to the same bytes.
func (s *JobSpec) Normalize() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	switch {
	case s.Sweep != nil:
		s.Sweep.Normalize()
	case s.Campaign != nil:
		s.Campaign.Normalize()
	case s.Verify != nil:
		s.Verify.Normalize()
	case s.Script != nil:
		if s.Script.Version == 0 {
			s.Script.Version = chaos.ScriptVersion
		}
	}
	if s.Kind == "" {
		// A single payload implies its kind.
		switch {
		case s.Sweep != nil:
			s.Kind = KindSweep
		case s.Campaign != nil:
			s.Kind = KindCampaign
		case s.Verify != nil:
			s.Kind = KindVerify
		case s.Script != nil:
			s.Kind = KindScript
		}
	}
}

// Validate checks that exactly the kind-matching payload is present and
// structurally valid.
func (s *JobSpec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("serve: job spec version %d, want %d", s.Version, SpecVersion)
	}
	n := 0
	if s.Sweep != nil {
		n++
	}
	if s.Campaign != nil {
		n++
	}
	if s.Verify != nil {
		n++
	}
	if s.Script != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("serve: job spec needs exactly one of sweep/campaign/verify/script, got %d", n)
	}
	switch s.Kind {
	case KindSweep:
		if s.Sweep == nil {
			return fmt.Errorf("serve: kind %q without sweep payload", s.Kind)
		}
		return s.Sweep.Validate()
	case KindCampaign:
		if s.Campaign == nil {
			return fmt.Errorf("serve: kind %q without campaign payload", s.Kind)
		}
		return s.Campaign.Validate()
	case KindVerify:
		if s.Verify == nil {
			return fmt.Errorf("serve: kind %q without verify payload", s.Kind)
		}
		return s.Verify.Validate()
	case KindScript:
		if s.Script == nil {
			return fmt.Errorf("serve: kind %q without script payload", s.Kind)
		}
		return s.Script.Validate()
	default:
		return fmt.Errorf("serve: unknown job kind %q (use sweep, campaign, verify, script)", s.Kind)
	}
}

// Canonical renders the normalized spec as canonical JSON (fixed struct
// field order, defaults filled) and derives its content digest. The spec
// must already be normalized and valid (DecodeSpec guarantees both).
func (s *JobSpec) Canonical() ([]byte, Digest, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, "", fmt.Errorf("serve: canonicalise job spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return data, Digest(hex.EncodeToString(sum[:])), nil
}

// ScriptOutcome is the serialisable result of a script job.
type ScriptOutcome struct {
	Script     chaos.Script  `json:"script"`
	Verdict    chaos.Verdict `json:"verdict"`
	FramesSent int           `json:"framesSent"`
	Incomplete int           `json:"incomplete"`
}
