package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// maxSpecBytes bounds a submitted job spec; canonical specs are small,
// and the limit keeps a misbehaving client from buffering gigabytes.
const maxSpecBytes = 1 << 20

// Server is the HTTP face of a Scheduler: the /v1 job API. It is an
// http.Handler; mount it on any listener.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wraps a scheduler in the /v1 API.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/events", srv.handleEvents)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/trace", srv.handleTrace)
	srv.mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /v1/stats", srv.handleStats)
	srv.mux.HandleFunc("GET /metrics", srv.handleMetrics)
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// SubmitResponse is the POST /v1/jobs reply.
type SubmitResponse struct {
	ID        Digest    `json:"id"`
	Admission string    `json:"admission"` // enqueued | coalesced | cached
	Status    JobStatus `json:"status"`
}

// handleSubmit accepts a job spec, admits it and — when ?wait is given —
// blocks until the job finishes or the wait budget expires.
//
//	200: terminal (cache hit, or wait satisfied)
//	202: admitted, still queued or running
//	400: malformed or invalid spec
//	429: shard queue full (Retry-After set)
//	503: draining
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, adm, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.sched.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if wait, ok := parseWait(r.URL.Query().Get("wait")); ok {
		ctx := r.Context()
		if wait > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, wait)
			defer cancel()
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
		}
	}

	st := job.Status()
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: job.Digest(), Admission: adm.String(), Status: st})
}

// parseWait interprets the ?wait query parameter: absent/false disables
// waiting; "true"/"1"/"" wait until the request context ends; otherwise
// a Go duration ("30s") bounds the wait.
func parseWait(v string) (time.Duration, bool) {
	switch v {
	case "":
		return 0, false
	case "0", "false", "no":
		return 0, false
	case "1", "true", "yes":
		return 0, true
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 0, false
}

// pathDigest extracts the {id} wildcard and rejects anything that is not
// a well-formed content address. ServeMux decodes %2F inside wildcard
// segments, so without this check a crafted id could walk out of the
// spool directory when the scheduler falls back to a spool read.
func pathDigest(w http.ResponseWriter, r *http.Request) (Digest, bool) {
	d := Digest(r.PathValue("id"))
	if !d.Valid() {
		// The id is not echoed back: it is attacker-controlled input.
		writeError(w, http.StatusNotFound, "serve: malformed job id (want 64 lowercase hex digits)")
		return "", false
	}
	return d, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.sched.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "serve: unknown job %s", d.Short())
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents streams a running job's protocol events as NDJSON, one
// event per line, flushed as emitted. One streamer per job: a second
// concurrent reader gets 409. The stream ends when the job reaches a
// terminal state and the ring is drained.
//
// Events are rendered into a bounded per-job line tail before going to
// the client, and ?from=N replays the tail from absolute line index N —
// a client that counted the lines it received can reconnect after a drop
// and resume exactly where it stopped (lines older than the tail's
// capacity are gone, as ring overflow already makes the stream lossy).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.sched.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "serve: unknown job %s", d.Short())
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		from = 0
	}
	if job.ring == nil || job.tail == nil {
		// Cache hits never ran here; there is no event stream.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		return
	}
	select {
	case job.streamMu <- struct{}{}:
		defer func() { <-job.streamMu }()
	default:
		writeError(w, http.StatusConflict, "serve: job %s already has an event streamer", d.Short())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// The renderer drains ring events into the tail; the loop below ships
	// tail lines to the client. Decoupling the two is what makes resume
	// work: every rendered line is indexed before it is sent anywhere.
	render := obs.NewJSONLStream(&lineSplitter{fn: job.tail.Append}, runTag(job.spec), nil)
	cursor := from
	ship := func() bool {
		job.ring.Drain(render)
		_ = render.Flush()
		lines, first := job.tail.Since(cursor)
		cursor = first
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n")); err != nil {
				return false
			}
			cursor++
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ctx := r.Context()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if !ship() {
			return // client went away
		}
		select {
		case <-job.Done():
			ship()
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// runTag picks the JSONL run tag for a job's event stream: the base seed
// where the spec has one.
func runTag(spec *JobSpec) int64 {
	switch {
	case spec == nil:
		return 0
	case spec.Sweep != nil:
		return spec.Sweep.Seed
	case spec.Campaign != nil:
		return spec.Campaign.Seed
	default:
		return 0
	}
}

// HealthResponse is the GET /v1/healthz reply. Status is the summary a
// load balancer switches on; the per-store fields let a fleet registry
// distinguish a healthy worker from one whose durability has degraded
// to memory-only (still serving, but a crash loses work), and the build
// fields identify what is actually running on the other end.
type HealthResponse struct {
	Status    string `json:"status"` // ok | degraded | draining
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"goVersion,omitempty"`
	// Journal / Spool / Checkpoints: ok | degraded | disabled.
	Journal     string `json:"journal,omitempty"`
	Spool       string `json:"spool,omitempty"`
	Checkpoints string `json:"checkpoints,omitempty"`
}

// Degraded reports whether any configured durability store has failed
// over to memory-only operation.
func (h HealthResponse) Degraded() bool {
	return h.Journal == "degraded" || h.Spool == "degraded" || h.Checkpoints == "degraded"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.sched.Health()
	code := http.StatusOK
	if h.Status == "draining" {
		// Draining stays 503 so dumb health checks pull the instance;
		// degraded is 200 — the service still answers correctly, the
		// body says what it lost.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

// handleMetrics serves the scheduler state as Prometheus text
// exposition format: the scrape surface for dashboards and the CI
// format lint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WriteMetrics(w, s.sched.Stats())
}

// handleTrace serves a finished job's end-to-end timeline as Chrome
// trace-event JSON, loadable in Perfetto. The timeline is only complete
// once the job is terminal; a request for a live job gets 409.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := pathDigest(w, r)
	if !ok {
		return
	}
	job, ok := s.sched.Job(d)
	if !ok {
		writeError(w, http.StatusNotFound, "serve: unknown job %s", d.Short())
		return
	}
	tr, err := BuildTrace(job)
	if errors.Is(err, ErrJobRunning) {
		writeError(w, http.StatusConflict, "serve: job %s not finished; retry after completion", d.Short())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "serve: build trace: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = tr.Write(w)
}
