package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a simulation service over its /v1 API. The zero-value
// HTTP client rides defaultHTTP's pooled transport; long waits ride on
// the request context, not on a transport timeout.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8329".
	BaseURL string
	// HTTP is the underlying client (defaultHTTP when nil).
	HTTP *http.Client
}

// defaultHTTP is the shared client behind every zero-value Client:
// explicit dial, handshake and idle-pool bounds, where
// http.DefaultClient would hold unlimited idle sockets forever — a leak
// under fleet worker churn, where coordinators open connections to
// workers that keep dying. No overall or response-header timeout: a
// blocking ?wait= submit legitimately holds its response open for the
// whole job, so deadlines belong to the request context.
var defaultHTTP = &http.Client{
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          64,
		MaxIdleConnsPerHost:   8,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// NewClient creates a client for the given service root.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

// APIError is a non-2xx reply from the service.
type APIError struct {
	Code       int
	Message    string
	RetryAfter time.Duration // from Retry-After on 429, else 0
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d from service: %s", e.Code, e.Message)
}

func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	msg := strings.TrimSpace(string(body))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	err := &APIError{Code: resp.StatusCode, Message: msg}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil {
			err.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return err
}

// Submit posts a spec. wait > 0 asks the service to block that long for
// completion; wait < 0 blocks until the job finishes (bounded by ctx).
func (c *Client) Submit(ctx context.Context, spec *JobSpec, wait time.Duration) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode job spec: %w", err)
	}
	url := c.BaseURL + "/v1/jobs"
	switch {
	case wait < 0:
		url += "?wait=true"
	case wait > 0:
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeAPIError(resp)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("serve: decode submit response: %w", err)
	}
	return &sr, nil
}

// Job fetches a job's status by digest.
func (c *Client) Job(ctx context.Context, id Digest) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+string(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode job status: %w", err)
	}
	return &st, nil
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id Digest, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Events streams a job's NDJSON event lines, calling fn for each line
// until the stream ends or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id Digest, fn func(line []byte) error) error {
	return c.EventsFrom(ctx, id, 0, fn)
}

// EventsFrom streams a job's NDJSON event lines starting at absolute
// line index from (the server replays its buffered tail from there), so
// a caller that counted received lines can resume a dropped stream.
func (c *Client) EventsFrom(ctx context.Context, id Digest, from uint64, fn func(line []byte) error) error {
	return c.Lines(ctx, "/v1/jobs/"+string(id)+"/events", from, fn)
}

// Lines streams one NDJSON endpoint (a service-root-relative path whose
// server replays a line tail honouring ?from=N) starting at absolute
// line index from, calling fn per line. It is the single-connection
// primitive under EventsFrom and WatchLines; fleet endpoints reuse it
// for their own event streams.
func (c *Client) Lines(ctx context.Context, path string, from uint64, fn func(line []byte) error) error {
	url := c.BaseURL + path
	if from > 0 {
		url += "?from=" + strconv.FormatUint(from, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := fn(sc.Bytes()); err != nil {
			return &callbackError{err: err}
		}
	}
	return sc.Err()
}

// callbackError marks an error as raised by the caller's line callback,
// so retry loops propagate it instead of reconnecting.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// watchMaxFailures bounds consecutive reconnect attempts that made no
// progress (received no line) before Watch gives up.
const watchMaxFailures = 8

// Watch streams a job's NDJSON event lines like Events, but survives
// dropped connections: on a transport error (or an EOF that arrives
// before the job is terminal) it reconnects with exponential backoff
// plus jitter, resuming from the last line it delivered, so fn sees
// every line exactly once across reconnects. It returns nil once the job
// is terminal and its stream is drained.
func (c *Client) Watch(ctx context.Context, id Digest, fn func(line []byte) error) error {
	return c.WatchLines(ctx, "/v1/jobs/"+string(id)+"/events", fn, func(ctx context.Context) bool {
		st, err := c.Job(ctx, id)
		return err == nil && (st.State == StateDone || st.State == StateFailed)
	})
}

// WatchLines streams any ?from=N-resumable NDJSON endpoint with Watch's
// reconnect discipline: on a drop it backs off (exponentially, with
// jitter) and resumes at the line count it already delivered, so fn
// sees every line exactly once across reconnects. finished, if non-nil,
// is consulted after a clean EOF: returning true ends the watch with
// nil (the stream's source is terminal and drained); with finished nil
// a clean EOF is treated as a drop and the watch reconnects until the
// no-progress budget runs out or ctx ends. It is the shared reconnect
// engine for job event streams and the fleet's shard-progress stream.
func (c *Client) WatchLines(ctx context.Context, path string, fn func(line []byte) error, finished func(ctx context.Context) bool) error {
	var seen uint64
	failures := 0
	backoff := 200 * time.Millisecond
	//lint:allow determinism -- client-side retry jitter; not simulation state
	jitter := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		progressed := false
		err := c.Lines(ctx, path, seen, func(line []byte) error {
			seen++
			progressed = true
			return fn(line)
		})
		var cb *callbackError
		if errors.As(err, &cb) {
			return cb.err
		}
		if err == nil && finished != nil && finished(ctx) {
			// Clean EOF and the source is terminal: the stream is drained.
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == http.StatusNotFound {
			return err // the resource does not exist; retrying cannot help
		}
		if progressed {
			failures = 0
			backoff = 200 * time.Millisecond
		} else if failures++; failures >= watchMaxFailures {
			if err == nil {
				err = fmt.Errorf("serve: watch %s: no progress after %d reconnects", path, failures)
			}
			return err
		}
		delay := backoff
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			delay = ae.RetryAfter
		}
		//lint:allow determinism -- client-side retry jitter; not simulation state
		delay += time.Duration(jitter.Int63n(int64(delay) / 2))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		if backoff *= 2; backoff > 10*time.Second {
			backoff = 10 * time.Second
		}
	}
}

// SubmitRetry is Submit with backpressure handling: a 429 reply is
// retried after the service's Retry-After estimate (plus jitter, capped
// by attempts), so callers driving campaign batches through a busy
// service queue up instead of failing.
func (c *Client) SubmitRetry(ctx context.Context, spec *JobSpec, wait time.Duration, attempts int) (*SubmitResponse, error) {
	if attempts < 1 {
		attempts = 1
	}
	//lint:allow determinism -- client-side retry jitter; not simulation state
	jitter := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	fallback := time.Second
	for i := 0; i < attempts; i++ {
		sr, err := c.Submit(ctx, spec, wait)
		var ae *APIError
		if err == nil || !errors.As(err, &ae) || ae.Code != http.StatusTooManyRequests {
			return sr, err
		}
		lastErr = err
		delay := ae.RetryAfter
		if delay <= 0 {
			// No Retry-After estimate: grow our own backoff so repeated
			// blind retries spread out instead of arriving every second.
			delay = fallback
			if fallback *= 2; fallback > 30*time.Second {
				fallback = 30 * time.Second
			}
		}
		//lint:allow determinism -- client-side retry jitter; not simulation state
		delay += time.Duration(jitter.Int63n(int64(delay) / 2))
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
	return nil, lastErr
}

// Stats fetches the scheduler statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode stats: %w", err)
	}
	return &st, nil
}

// GetJSON fetches an arbitrary service path and decodes the JSON reply
// into v — the escape hatch for endpoints outside the core job API
// (e.g. a coordinator's /v1/fleet), keeping the transport, error
// envelope and timeout behaviour of the typed helpers.
func (c *Client) GetJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("serve: decode %s: %w", path, err)
	}
	return nil
}

// Trace downloads a finished job's Perfetto trace (Chrome trace-event
// JSON). The server answers 409 until the job is terminal.
func (c *Client) Trace(ctx context.Context, id Digest) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+string(id)+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: read trace: %w", err)
	}
	return data, nil
}

// MetricsText fetches the Prometheus text-format exposition.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: read metrics: %w", err)
	}
	return data, nil
}

// Healthz reports the service health status string ("ok", "degraded"
// or "draining").
func (c *Client) Healthz(ctx context.Context) (string, error) {
	h, err := c.Health(ctx)
	if err != nil {
		return "", err
	}
	return h.Status, nil
}

// Health fetches the full health report: status, per-store durability
// state and build identity — what a fleet registry heartbeat consumes.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("serve: decode healthz: %w", err)
	}
	return &h, nil
}
