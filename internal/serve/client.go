package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a simulation service over its /v1 API. The zero-value
// HTTP client is fine for same-host use; long waits ride on the request
// context, not on the transport timeout.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8329".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient creates a client for the given service root.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a non-2xx reply from the service.
type APIError struct {
	Code       int
	Message    string
	RetryAfter time.Duration // from Retry-After on 429, else 0
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d from service: %s", e.Code, e.Message)
}

func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	msg := strings.TrimSpace(string(body))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	err := &APIError{Code: resp.StatusCode, Message: msg}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil {
			err.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return err
}

// Submit posts a spec. wait > 0 asks the service to block that long for
// completion; wait < 0 blocks until the job finishes (bounded by ctx).
func (c *Client) Submit(ctx context.Context, spec *JobSpec, wait time.Duration) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode job spec: %w", err)
	}
	url := c.BaseURL + "/v1/jobs"
	switch {
	case wait < 0:
		url += "?wait=true"
	case wait > 0:
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeAPIError(resp)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("serve: decode submit response: %w", err)
	}
	return &sr, nil
}

// Job fetches a job's status by digest.
func (c *Client) Job(ctx context.Context, id Digest) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+string(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode job status: %w", err)
	}
	return &st, nil
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id Digest, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// Events streams a job's NDJSON event lines, calling fn for each line
// until the stream ends or ctx is cancelled.
func (c *Client) Events(ctx context.Context, id Digest, fn func(line []byte) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+string(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := fn(sc.Bytes()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Stats fetches the scheduler statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode stats: %w", err)
	}
	return &st, nil
}

// Healthz reports the service health status string ("ok" or "draining").
func (c *Client) Healthz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return "", fmt.Errorf("serve: decode healthz: %w", err)
	}
	return h.Status, nil
}
