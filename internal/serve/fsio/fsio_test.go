package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteFileAtomicReplacesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := WriteFileAtomic(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS{}, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteFileAtomicShortWriteLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := WriteFileAtomic(OS{}, path, []byte("original")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(OS{})
	fs.Inject(&Fault{Op: OpWrite, Err: syscall.ENOSPC, Short: 3})
	err := WriteFileAtomic(fs, path, []byte("replacement"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "original" {
		t.Fatalf("target modified by failed write: %q", got)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind after failure: %v", entries)
	}
}

func TestWriteFileAtomicSyncFailureAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	fs := NewFaulty(OS{})
	fs.Inject(&Fault{Op: OpSync, Err: syscall.EIO})
	if err := WriteFileAtomic(fs, path, []byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("target exists after aborted write: %v", err)
	}
}

func TestFaultyTornRenameLeavesTruncatedDestination(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(OS{})
	fs.Inject(&Fault{Op: OpRename, Torn: true})
	if err := fs.Rename(src, dst); err != nil {
		t.Fatalf("torn rename reports success by design, got %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("destination = %q, want truncated prefix 01234", got)
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("source still present after torn rename: %v", err)
	}
}

func TestFaultyAfterAndCountWindow(t *testing.T) {
	fs := NewFaulty(OS{})
	dir := t.TempDir()
	fs.Inject(&Fault{Op: OpRead, Err: syscall.EIO, After: 1, Count: 1})
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(path); err != nil {
		t.Fatalf("call 1 should pass (After=1): %v", err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("call 2 should fail, got %v", err)
	}
	if _, err := fs.ReadFile(path); err != nil {
		t.Fatalf("call 3 should pass (Count=1): %v", err)
	}
}

func TestFaultyPathSubstringMatch(t *testing.T) {
	fs := NewFaulty(OS{})
	dir := t.TempDir()
	fs.Inject(&Fault{Op: OpRead, Path: "journal", Err: syscall.EIO})
	jp := filepath.Join(dir, "journal.wal")
	op := filepath.Join(dir, "other.json")
	for _, p := range []string{jp, op} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.ReadFile(jp); !errors.Is(err, syscall.EIO) {
		t.Fatalf("journal read should fail, got %v", err)
	}
	if _, err := fs.ReadFile(op); err != nil {
		t.Fatalf("unmatched path should pass: %v", err)
	}
}

func TestOSSyncDir(t *testing.T) {
	if err := (OS{}).SyncDir(t.TempDir()); err != nil {
		// Directory fsync support varies by filesystem; only assert that
		// the error, when present, is a real syscall error, not a panic.
		if !strings.Contains(err.Error(), "sync") && !errors.Is(err, syscall.EINVAL) {
			t.Logf("SyncDir: %v (tolerated)", err)
		}
	}
}
