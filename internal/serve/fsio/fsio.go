// Package fsio is the filesystem seam under every durable store of the
// simulation service: the result spool, the write-ahead job journal and
// the checkpoint directory all perform their I/O through the FS
// interface instead of calling the os package directly. Production code
// uses OS, which adds the fsync discipline real durability needs
// (file data synced before rename, parent directory synced after);
// tests substitute Faulty to inject short writes, ENOSPC, EIO and torn
// renames and prove the stores detect corruption and degrade instead of
// crashing.
package fsio

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable handle FS hands out. Sync must flush file data to
// stable storage (fsync); Close without Sync gives no durability.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the set of filesystem operations the durable stores use. All
// paths are interpreted as by the os package.
type FS interface {
	// MkdirAll creates a directory and parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// OpenFile opens a file for writing with the given flags.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// SyncDir flushes a directory's entries to stable storage, making a
	// preceding rename in it durable.
	SyncDir(path string) error
}

// OS is the production FS backed by the os package.
type OS struct{}

var _ FS = OS{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// OpenFile implements FS.
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS. Some filesystems refuse fsync on directories;
// that refusal is reported, not swallowed, so tests can assert on it —
// callers treat SyncDir failures as a degradation signal like any other.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic durably replaces path with data: write to a temp file
// in the same directory, fsync the temp file, rename it over path, and
// fsync the parent directory. Only after the directory sync is the new
// content guaranteed to survive power loss — a rename alone orders the
// replacement but does not persist it. On any error the temp file is
// removed and path is left untouched (the rename is the only visible
// step, and it is atomic).
func WriteFileAtomic(fs FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	//lint:allow errsink -- best-effort removal of a temp file on the failure path; the write error is returned
	cleanup := func() { _ = fs.Remove(name) }
	if _, err := tmp.Write(data); err != nil {
		//lint:allow errsink -- close on the failure path; the write error is the one the caller needs
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		//lint:allow errsink -- close on the failure path; the sync error is the one the caller needs
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fs.Rename(name, path); err != nil {
		cleanup()
		return err
	}
	return fs.SyncDir(dir)
}

// OrOS returns fs, or OS when fs is nil — the default every store
// applies so a zero config means real durable I/O.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}
