package fsio

import (
	"os"
	"strings"
	"sync"
)

// Op names one FS operation class a Fault can target.
type Op string

const (
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpRename  Op = "rename"
	OpCreate  Op = "create" // OpenFile and CreateTemp
	OpRemove  Op = "remove"
	OpRead    Op = "read"
	OpSyncDir Op = "syncdir"
	OpMkdir   Op = "mkdir"
)

// Fault is one injected failure rule. A rule matches an operation by Op
// and (optionally) a path substring; After skips that many matching
// calls first, and Count bounds how many calls fail (0 = every one from
// then on). Short, for writes, accepts that many bytes before failing —
// a torn write. Torn, for renames, simulates a crash mid-replace: the
// destination is left holding a truncated prefix of the source.
type Fault struct {
	Op    Op
	Path  string // substring match; "" matches every path
	Err   error  // error returned to the caller (required unless Torn)
	After int    // matching calls to let through before failing
	Count int    // failures to inject (0 = unlimited)
	Short int    // write faults: bytes accepted before the error
	Torn  bool   // rename faults: leave a truncated destination behind

	hits int // matching calls seen (guarded by Faulty.mu)
	done int // failures injected
}

// Faulty wraps an FS and injects configured faults; operations with no
// matching active fault pass through to Base. Safe for concurrent use.
type Faulty struct {
	Base FS

	mu     sync.Mutex
	faults []*Fault
}

var _ FS = (*Faulty)(nil)

// NewFaulty wraps base (nil means OS).
func NewFaulty(base FS) *Faulty { return &Faulty{Base: OrOS(base)} }

// Inject adds a fault rule. The returned pointer can be inspected after
// the fact (Hits) or cleared (Clear).
func (f *Faulty) Inject(rule *Fault) *Fault {
	f.mu.Lock()
	f.faults = append(f.faults, rule)
	f.mu.Unlock()
	return rule
}

// Clear removes every fault rule.
func (f *Faulty) Clear() {
	f.mu.Lock()
	f.faults = nil
	f.mu.Unlock()
}

// Hits reports how many times the rule has matched (including calls let
// through by After).
func (f *Faulty) Hits(rule *Fault) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return rule.hits
}

// match returns the first active fault for (op, path) and advances its
// counters.
func (f *Faulty) match(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rule := range f.faults {
		if rule.Op != op {
			continue
		}
		if rule.Path != "" && !strings.Contains(path, rule.Path) {
			continue
		}
		rule.hits++
		if rule.hits <= rule.After {
			return nil
		}
		if rule.Count > 0 && rule.done >= rule.Count {
			return nil
		}
		rule.done++
		return rule
	}
	return nil
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if rule := f.match(OpMkdir, path); rule != nil {
		return rule.Err
	}
	return f.Base.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if rule := f.match(OpRead, path); rule != nil {
		return nil, rule.Err
	}
	return f.Base.ReadFile(path)
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if rule := f.match(OpCreate, path); rule != nil {
		return nil, rule.Err
	}
	file, err := f.Base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if rule := f.match(OpCreate, dir); rule != nil {
		return nil, rule.Err
	}
	file, err := f.Base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, file: file}, nil
}

// Rename implements FS. A Torn rule copies a truncated prefix of oldpath
// into newpath and removes oldpath — the on-disk state a crash between
// data blocks and the rename commit can leave on journaling-free setups
// — and reports success, so only a later read can notice.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if rule := f.match(OpRename, oldpath+"->"+newpath); rule != nil {
		if !rule.Torn {
			return rule.Err
		}
		data, err := f.Base.ReadFile(oldpath)
		if err != nil {
			return err
		}
		torn := data[:len(data)/2]
		w, err := f.Base.OpenFile(newpath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		_, werr := w.Write(torn)
		cerr := w.Close()
		//lint:allow errsink -- fault injector simulating a torn rename; leftover source is part of the simulated damage
		_ = f.Base.Remove(oldpath)
		if werr != nil {
			return werr
		}
		return cerr
	}
	return f.Base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	if rule := f.match(OpRemove, path); rule != nil {
		return rule.Err
	}
	return f.Base.Remove(path)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(path string) error {
	if rule := f.match(OpSyncDir, path); rule != nil {
		return rule.Err
	}
	return f.Base.SyncDir(path)
}

// faultyFile applies write and sync rules to a wrapped file.
type faultyFile struct {
	f    *Faulty
	file File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if rule := ff.f.match(OpWrite, ff.file.Name()); rule != nil {
		n := rule.Short
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if _, err := ff.file.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return n, rule.Err
	}
	return ff.file.Write(p)
}

func (ff *faultyFile) Sync() error {
	if rule := ff.f.match(OpSync, ff.file.Name()); rule != nil {
		return rule.Err
	}
	return ff.file.Sync()
}

func (ff *faultyFile) Close() error { return ff.file.Close() }
func (ff *faultyFile) Name() string { return ff.file.Name() }
