// Package journal is the simulation service's write-ahead job journal:
// the durability record that makes "202 Accepted" mean accepted. Before
// the service acknowledges a job it appends a CRC-framed accept record
// (spec included) and fsyncs; when the job reaches a terminal state it
// appends a done or fail record. A restart replays every accepted job
// with no terminal record through the scheduler, so a crash — even
// SIGKILL mid-campaign — loses no acknowledged work.
//
// Record framing is length-prefixed with a CRC32 over the payload:
//
//	uint32 LE payload length | uint32 LE CRC32(IEEE) of payload | payload
//
// The payload is one JSON Record. A torn tail (partial frame or CRC
// mismatch on the final record) is the expected state after a crash
// mid-append and is silently truncated; corruption in the middle of the
// file means the storage lied about earlier fsyncs, so the whole file is
// quarantined (renamed aside, never served) and recovery proceeds with
// the records before the corruption.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/fsio"
)

// Op classifies a record.
type Op string

const (
	// OpAccept records a job admission: spec accepted, 202 about to be
	// returned. Carries the canonical spec.
	OpAccept Op = "accept"
	// OpDone records successful completion; the result is in the
	// content-addressed cache, keyed by the same digest.
	OpDone Op = "done"
	// OpFail records terminal failure; recovery must not replay the job.
	OpFail Op = "fail"
)

// Record is one journal entry.
type Record struct {
	Op   Op              `json:"op"`
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// ErrDegraded reports that the journal hit an I/O fault earlier and has
// fallen back to memory-only operation; appends are dropped.
var ErrDegraded = errors.New("journal: degraded to memory-only after I/O failure")

// frameHeader is the fixed per-record overhead.
const frameHeader = 8

// maxRecordBytes bounds one record; a length prefix beyond it means
// corruption, not a giant record (canonical specs are ~1 KiB).
const maxRecordBytes = 4 << 20

// fsyncBoundsUs buckets fsync latency from SSD-class sub-millisecond
// syncs up to the half-second stalls a saturated disk produces.
var fsyncBoundsUs = []uint64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 200000, 500000}

// Journal is an append-only, fsync-per-append record log. Safe for
// concurrent use.
type Journal struct {
	fs   fsio.FS
	path string

	fsyncHist *obs.Histogram // fsync latency in microseconds

	mu sync.Mutex
	f  fsio.File

	// degraded and appends are atomics, not mu-guarded state: the stat
	// accessors (Degraded, Appends) feed /v1/stats, and a read path must
	// never queue behind an append's fsync on j.mu.
	degraded atomic.Bool
	appends  atomic.Uint64
}

// RecoveryInfo summarises what Open found.
type RecoveryInfo struct {
	// Pending are the accepted-but-unfinished records, in accept order.
	Pending []Record
	// Replayed counts every valid record read.
	Replayed int
	// TruncatedBytes is the torn tail dropped, if any.
	TruncatedBytes int
	// Quarantined is the path the corrupt journal was moved to, or "".
	Quarantined string
}

// Open reads the journal at path (if any), derives the set of accepted
// jobs with no terminal record, compacts the file down to exactly those
// records, and returns the journal opened for append. fs nil means the
// real filesystem. Open never fails on corrupt content — a torn tail is
// truncated and a corrupt body quarantined — only on I/O errors writing
// the compacted file.
func Open(fs fsio.FS, path string) (*Journal, RecoveryInfo, error) {
	fs = fsio.OrOS(fs)
	j := &Journal{fs: fs, path: path, fsyncHist: obs.NewHistogram(fsyncBoundsUs)}
	var info RecoveryInfo

	if err := fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, info, fmt.Errorf("journal: %w", err)
	}
	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// Unreadable journal: quarantine the path (best effort) and start
		// fresh rather than refusing to serve.
		info.Quarantined = path + ".corrupt"
		//lint:allow errsink -- best-effort quarantine of an unreadable journal; Info.Quarantined reports it either way
		_ = fs.Rename(path, info.Quarantined)
		data = nil
	}

	records, rest := scan(data)
	info.Replayed = len(records)
	if len(rest) > 0 {
		// Distinguish a torn tail (no complete valid record follows) from
		// mid-file corruption (valid frames resume later): if another
		// record parses anywhere in the rest, earlier synced data was
		// damaged and the file cannot be trusted as a whole.
		if tornTail(rest) {
			info.TruncatedBytes = len(rest)
		} else {
			info.Quarantined = path + ".corrupt"
			//lint:allow errsink -- best-effort quarantine of a mid-file-corrupt journal; Info.Quarantined reports it either way
			_ = fs.Rename(path, info.Quarantined)
		}
	}
	info.Pending = pending(records)

	// Compact: rewrite the journal to exactly the pending accepts, so
	// recovery work does not accumulate across restarts and replayed jobs
	// keep their durable record without re-appending.
	var buf []byte
	for _, r := range info.Pending {
		frame, err := encode(r)
		if err != nil {
			return nil, info, err
		}
		buf = append(buf, frame...)
	}
	if err := fsio.WriteFileAtomic(fs, path, buf); err != nil {
		return nil, info, fmt.Errorf("journal: compact: %w", err)
	}
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("journal: open for append: %w", err)
	}
	j.f = f
	return j, info, nil
}

// encode frames one record.
func encode(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// scan parses frames from the front of data, returning the valid records
// and the first undecodable suffix (empty when the file is clean).
func scan(data []byte) (records []Record, rest []byte) {
	for len(data) > 0 {
		r, n, ok := decodeOne(data)
		if !ok {
			return records, data
		}
		records = append(records, r)
		data = data[n:]
	}
	return records, nil
}

// decodeOne parses a single frame from the front of data.
func decodeOne(data []byte) (Record, int, bool) {
	if len(data) < frameHeader {
		return Record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n <= 0 || n > maxRecordBytes || frameHeader+n > len(data) {
		return Record{}, 0, false
	}
	payload := data[frameHeader : frameHeader+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, false
	}
	var r Record
	if json.Unmarshal(payload, &r) != nil || r.ID == "" {
		return Record{}, 0, false
	}
	return r, frameHeader + n, true
}

// tornTail reports whether rest looks like a crash-torn tail: no
// complete valid frame anywhere after the corruption point. A valid
// frame deeper in means earlier fsync'd records were damaged in place.
func tornTail(rest []byte) bool {
	for off := 1; off+frameHeader <= len(rest); off++ {
		if _, _, ok := decodeOne(rest[off:]); ok {
			return false
		}
	}
	return true
}

// pending reduces a record stream to accepts with no later terminal
// record, preserving accept order.
func pending(records []Record) []Record {
	terminal := make(map[string]bool)
	for _, r := range records {
		if r.Op == OpDone || r.Op == OpFail {
			terminal[r.ID] = true
		}
	}
	var out []Record
	seen := make(map[string]bool)
	for _, r := range records {
		if r.Op != OpAccept || terminal[r.ID] || seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		out = append(out, r)
	}
	return out
}

// Append durably logs one record: frame, write, fsync. The first I/O
// failure flips the journal to degraded memory-only mode — later appends
// return ErrDegraded without touching the disk — so one full disk cannot
// take the service down, only its durability.
func (j *Journal) Append(r Record) error {
	frame, err := encode(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded.Load() || j.f == nil {
		return ErrDegraded
	}
	if _, err := j.f.Write(frame); err != nil {
		j.degraded.Store(true)
		return fmt.Errorf("journal: append: %w", err)
	}
	//lint:allow determinism -- fsync latency telemetry; never feeds simulation state
	syncStart := time.Now()
	//lint:allow lockorder -- Journal.mu exists precisely to serialize the frame write with this fsync; contenders are other appends, which must wait anyway
	if err := j.f.Sync(); err != nil {
		j.degraded.Store(true)
		return fmt.Errorf("journal: sync: %w", err)
	}
	//lint:allow determinism -- fsync latency telemetry; never feeds simulation state
	j.fsyncHist.Observe(uint64(time.Since(syncStart).Microseconds()))
	j.appends.Add(1)
	return nil
}

// FsyncLatency snapshots the per-append fsync latency distribution in
// microseconds — the durability cost the service pays per accepted job,
// surfaced through /v1/stats and /metrics.
func (j *Journal) FsyncLatency() obs.HistogramSnapshot {
	return j.fsyncHist.State()
}

// FsyncQuantile estimates a latency quantile in microseconds.
func (j *Journal) FsyncQuantile(q float64) uint64 {
	return j.fsyncHist.Quantile(q)
}

// Degraded reports whether the journal has fallen back to memory-only.
// Lock-free on purpose: stats readers must not wait out an fsync.
func (j *Journal) Degraded() bool {
	return j.degraded.Load()
}

// Appends returns the number of records durably appended since Open.
// Lock-free on purpose: stats readers must not wait out an fsync.
func (j *Journal) Appends() uint64 {
	return j.appends.Load()
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
