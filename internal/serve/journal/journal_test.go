package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/serve/fsio"
)

func openT(t *testing.T, fs fsio.FS, path string) (*Journal, RecoveryInfo) {
	t.Helper()
	j, info, err := Open(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, info
}

func rec(op Op, id string) Record {
	return Record{Op: op, ID: id, Spec: json.RawMessage(`{"kind":"sweep"}`)}
}

func ids(records []Record) []string {
	out := make([]string, len(records))
	for i, r := range records {
		out[i] = r.ID
	}
	return out
}

func TestJournalRoundTripAndPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j", "journal.wal")
	j, info := openT(t, nil, path)
	if len(info.Pending) != 0 || info.Replayed != 0 {
		t.Fatalf("fresh journal not empty: %+v", info)
	}
	for _, r := range []Record{
		rec(OpAccept, "a"), rec(OpAccept, "b"), rec(OpAccept, "c"),
		{Op: OpDone, ID: "b"}, {Op: OpFail, ID: "c"},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, info2 := openT(t, nil, path)
	if got := ids(info2.Pending); len(got) != 1 || got[0] != "a" {
		t.Fatalf("pending = %v, want [a]", got)
	}
	if info2.Pending[0].Op != OpAccept || len(info2.Pending[0].Spec) == 0 {
		t.Fatalf("pending record lost its spec: %+v", info2.Pending[0])
	}
}

func TestJournalCompactionDropsFinishedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, nil, path)
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		if err := j.Append(rec(OpAccept, id)); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpDone, ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, info := openT(t, nil, path)
	if len(info.Pending) != 0 {
		t.Fatalf("pending = %v, want none", ids(info.Pending))
	}
	// The compacted file holds only pending records: here, nothing.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("compacted journal is %d bytes, want 0", len(data))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, nil, path)
	if err := j.Append(rec(OpAccept, "keep")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var half [6]byte
	binary.LittleEndian.PutUint32(half[0:4], 100)
	if _, err := f.Write(half[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, info := openT(t, nil, path)
	if got := ids(info.Pending); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("pending = %v, want [keep]", got)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if info.Quarantined != "" {
		t.Fatalf("torn tail must truncate, not quarantine (got %q)", info.Quarantined)
	}
}

func TestJournalMidFileCorruptionQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, nil, path)
	for _, id := range []string{"first", "second", "third"} {
		if err := j.Append(rec(OpAccept, id)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Flip a payload byte inside the first record: its CRC fails while
	// later records still decode, which is in-place damage, not a torn
	// tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, info := openT(t, nil, path)
	if len(info.Pending) != 0 {
		t.Fatalf("corrupt journal served records: %v", ids(info.Pending))
	}
	if info.Quarantined == "" {
		t.Fatal("mid-file corruption not quarantined")
	}
	if _, err := os.Stat(info.Quarantined); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

func TestJournalDegradesOnAppendFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	fs := fsio.NewFaulty(nil)
	j, _ := openT(t, fs, path)
	fs.Inject(&fsio.Fault{Op: fsio.OpWrite, Path: "journal.wal", Err: syscall.ENOSPC})

	err := j.Append(rec(OpAccept, "x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first append error = %v, want ENOSPC", err)
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after I/O failure")
	}
	fs.Clear()
	if err := j.Append(rec(OpAccept, "y")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded append error = %v, want ErrDegraded", err)
	}
}

func TestJournalSyncFailureDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	fs := fsio.NewFaulty(nil)
	j, _ := openT(t, fs, path)
	fs.Inject(&fsio.Fault{Op: fsio.OpSync, Path: "journal.wal", Err: syscall.EIO})
	if err := j.Append(rec(OpAccept, "x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append error = %v, want EIO", err)
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after sync failure")
	}
}

func TestJournalDuplicateAcceptsCollapse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, nil, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(rec(OpAccept, "dup")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, info := openT(t, nil, path)
	if got := ids(info.Pending); len(got) != 1 {
		t.Fatalf("pending = %v, want one dup", got)
	}
}

func TestJournalUnreadableFileQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	if err := os.WriteFile(path, []byte("whatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := fsio.NewFaulty(nil)
	fs.Inject(&fsio.Fault{Op: fsio.OpRead, Path: "journal.wal", Err: syscall.EIO, Count: 1})
	j, info, err := Open(fs, path)
	if err != nil {
		t.Fatalf("unreadable journal must not be fatal: %v", err)
	}
	defer j.Close()
	if info.Quarantined == "" || !strings.HasSuffix(info.Quarantined, ".corrupt") {
		t.Fatalf("expected quarantine, got %+v", info)
	}
}
