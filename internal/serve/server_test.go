package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestService starts a scheduler (wrapping Execute in a run counter)
// behind an httptest server and returns a client for it.
func newTestService(t *testing.T, cfg Config) (*Client, *Scheduler, *atomic.Int64) {
	t.Helper()
	var runs atomic.Int64
	inner := cfg.Runner
	if inner == nil {
		inner = Execute
	}
	cfg.Runner = func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		runs.Add(1)
		return inner(ctx, spec, opt)
	}
	sched, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Stop)
	ts := httptest.NewServer(NewServer(sched))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), sched, &runs
}

const smallSweep = `{"sweep":{"protocol":"majorcan_5","nodes":5,"frames":50,"berStar":0.02,"seed":7,"eofOnly":true,"resetCounters":true}}`

func TestServiceEndToEndCacheHit(t *testing.T) {
	client, sched, runs := newTestService(t, Config{Shards: 2})
	ctx := context.Background()

	// Cold submit: the job runs and returns a sweep outcome.
	resp, err := client.Submit(ctx, mustDecode(t, smallSweep), -1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admission != "enqueued" || resp.Status.State != StateDone {
		t.Fatalf("cold submit: %+v", resp)
	}
	var outcome struct {
		Summary struct {
			Frames int `json:"frames"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(resp.Status.Result, &outcome); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if outcome.Summary.Frames != 50 {
		t.Fatalf("sweep covered %d frames, want 50", outcome.Summary.Frames)
	}

	simBefore := sched.Stats().Sim.BitsSimulated
	if simBefore == 0 {
		t.Fatal("scheduler metrics registry saw no simulated bits; job telemetry not wired")
	}

	// Byte-identical resubmit: answered from the cache. Acceptance
	// criterion: zero new simulation steps, and the stats hit counter
	// moves.
	resp2, err := client.Submit(ctx, mustDecode(t, smallSweep), -1)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Admission != "cached" || !resp2.Status.Cached {
		t.Fatalf("resubmit admission %q cached=%v, want cache hit", resp2.Admission, resp2.Status.Cached)
	}
	if resp2.ID != resp.ID {
		t.Fatalf("resubmit digest %s != original %s", resp2.ID, resp.ID)
	}
	if string(resp2.Status.Result) != string(resp.Status.Result) {
		t.Fatal("cached result differs from the computed one")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want 1 (cache hit must not re-run)", got)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sim.BitsSimulated != simBefore {
		t.Fatalf("resubmit simulated %d new bits, want 0", stats.Sim.BitsSimulated-simBefore)
	}
	if stats.Cache.Hits != 1 {
		t.Fatalf("/v1/stats cache hits = %d, want 1", stats.Cache.Hits)
	}
}

func TestServiceCoalescesConcurrentIdenticalSubmits(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	gate := func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return Execute(ctx, spec, opt)
	}
	client, _, runs := newTestService(t, Config{Shards: 4, Runner: gate})
	ctx := context.Background()

	// First caller starts the job; the rest pile in while it runs.
	var wg sync.WaitGroup
	results := make([]*SubmitResponse, 6)
	errs := make([]error, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Submit(ctx, mustDecode(t, smallSweep), -1)
		}(i)
		if i == 0 {
			<-started
		}
	}
	time.AfterFunc(100*time.Millisecond, func() { close(release) })
	wg.Wait()

	var firstResult string
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if r.Status.State != StateDone {
			t.Fatalf("caller %d state %q", i, r.Status.State)
		}
		if firstResult == "" {
			firstResult = string(r.Status.Result)
		} else if string(r.Status.Result) != firstResult {
			t.Fatalf("caller %d got a different result", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d identical concurrent submits ran the simulation %d times, want exactly 1", len(results), got)
	}
}

func TestServiceQueueFullReturns429(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 1)
	stuck := func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-block:
			return json.RawMessage(`"ok"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	client, _, _ := newTestService(t, Config{Shards: 1, QueueDepth: 1, Runner: stuck})
	ctx := context.Background()

	submit := func(seed int) error {
		_, err := client.Submit(ctx, mustDecode(t,
			fmt.Sprintf(`{"sweep":{"protocol":"can","frames":10,"seed":%d}}`, seed)), 0)
		return err
	}
	if err := submit(1); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := submit(2); err != nil {
		t.Fatal(err)
	}
	err := submit(3)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit err = %v, want 429", err)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("Retry-After %s, want >= 1s", ae.RetryAfter)
	}
}

func TestServiceDrainRejectsNewFinishesInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	gate := func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return json.RawMessage(`"done"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	client, sched, _ := newTestService(t, Config{Shards: 1, Runner: gate})
	ctx := context.Background()

	resp, err := client.Submit(ctx, mustDecode(t, smallSweep), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// SIGTERM path: drain in the background while the job is mid-flight.
	drained := make(chan error, 1)
	go func() { drained <- sched.Drain(context.Background()) }()
	waitFor(t, sched.Draining, "scheduler to enter draining state")

	// New work is rejected with 503 while the drain runs...
	_, err = client.Submit(ctx, mustDecode(t, `{"sweep":{"protocol":"can","frames":10,"seed":99}}`), 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain err = %v, want 503", err)
	}
	if status, err := client.Healthz(ctx); err != nil || status != "draining" {
		t.Fatalf("healthz during drain = %q, %v", status, err)
	}

	// ...and the in-flight job still completes.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := client.Job(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || string(st.Result) != `"done"` {
		t.Fatalf("in-flight job after drain: %+v, want done", st)
	}
}

func TestServiceEventStream(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	resp, err := client.Submit(ctx, mustDecode(t, smallSweep), -1)
	if err != nil {
		t.Fatal(err)
	}
	// The job is done; its ring still holds the tail of the event stream.
	var lines int
	err = client.Events(ctx, resp.ID, func(line []byte) error {
		lines++
		var ev struct {
			Run  int64  `json:"run"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad NDJSON line %q: %w", line, err)
		}
		if ev.Kind == "" {
			return fmt.Errorf("event without kind: %q", line)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("event stream empty; job telemetry not reaching the ring")
	}
}

func TestServiceRejectsMalformedSpecs(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 1})
	ctx := context.Background()
	for _, body := range []string{
		`{`,
		`{"sweep":{"protocol":"warpdrive"}}`,
		`{"sweep":{"protocol":"can","bogus":1}}`,
		`{}`,
	} {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
			client.BaseURL+"/v1/jobs", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServiceUnknownJob404(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 1})
	_, err := client.Job(context.Background(), Digest(strings.Repeat("ab", 32)))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusNotFound {
		t.Fatalf("unknown job err = %v, want 404", err)
	}
}

func TestServiceRejectsMalformedJobIDs(t *testing.T) {
	// ServeMux decodes %2F inside the {id} wildcard, so a crafted id used
	// to address any valid-JSON *.json file on disk through the spool
	// fallback. Anything but a 64-hex digest must 404 before the spool is
	// consulted.
	root := t.TempDir()
	spool := filepath.Join(root, "spool")
	loot := `{"spec":{},"result":"tr3asure"}`
	if err := os.WriteFile(filepath.Join(root, "secret.json"), []byte(loot), 0o644); err != nil {
		t.Fatal(err)
	}
	client, _, _ := newTestService(t, Config{Shards: 1, SpoolDir: spool})
	for _, id := range []string{
		"..%2Fsecret",
		"..%2F..%2Fsecret",
		"secret",
		strings.Repeat("a", 63),
		strings.Repeat("A", 64),
	} {
		for _, path := range []string{"/v1/jobs/" + id, "/v1/jobs/" + id + "/events"} {
			resp, err := http.Get(client.BaseURL + path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET %s: status %d (%s), want 404", path, resp.StatusCode, body)
			}
			if strings.Contains(string(body), "tr3asure") {
				t.Fatalf("GET %s disclosed spool-adjacent file contents: %s", path, body)
			}
		}
	}
}

func TestServiceRunsEveryJobKind(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, tc := range []struct {
		kind Kind
		spec string
	}{
		{KindSweep, `{"sweep":{"protocol":"can","frames":20,"berStar":0.01,"seed":1}}`},
		{KindCampaign, `{"campaign":{"protocol":"can","trials":5,"seed":1}}`},
		{KindVerify, `{"verify":{"protocol":"majorcan_3","stations":4,"maxFlips":1}}`},
		{KindScript, `{"script":{"protocol":"can","nodes":5,"frames":1}}`},
	} {
		resp, err := client.Submit(ctx, mustDecode(t, tc.spec), -1)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if resp.Status.State != StateDone {
			t.Fatalf("%s: state %q (error %q)", tc.kind, resp.Status.State, resp.Status.Error)
		}
		if len(resp.Status.Result) == 0 || !json.Valid(resp.Status.Result) {
			t.Fatalf("%s: result not valid JSON", tc.kind)
		}
	}
}

func TestServiceStatsShape(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 3})
	ctx := context.Background()
	if _, err := client.Submit(ctx, mustDecode(t, smallSweep), -1); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("stats lists %d shards, want 3", len(st.Shards))
	}
	if st.Jobs.Submitted != 1 || st.Jobs.Executed != 1 {
		t.Fatalf("job counters %+v", st.Jobs)
	}
	if st.Latency.Count != 1 {
		t.Fatalf("latency count %d, want 1", st.Latency.Count)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatal("uptime not reported")
	}
}
