package serve

import (
	"encoding/json"
	"hash/crc32"
	"sync/atomic"

	"repro/internal/serve/fsio"
)

// ckptFile is the on-disk checkpoint frame: the job digest it belongs to
// plus a CRC32 over the progress payload. The id binds the file to its
// job — a checkpoint copied or renamed onto another digest's path fails
// validation instead of silently resuming the wrong job.
type ckptFile struct {
	CRC  uint32          `json:"crc"`
	ID   Digest          `json:"id"`
	Data json.RawMessage `json:"data"`
}

// ckptDegradeAfter is the number of consecutive checkpoint write
// failures that stops further checkpointing.
const ckptDegradeAfter = 3

// CheckpointStore persists per-job progress snapshots beside the result
// spool: one `<digest>.ckpt.json` per interrupted job, written atomically
// with full fsync discipline and read back under CRC verification. A
// checkpoint only ever holds completed batches, so resuming from one is
// byte-identical to an uninterrupted run; a corrupt checkpoint is
// quarantined and the job simply restarts from scratch — checkpoints are
// an optimisation, never a correctness dependency.
type CheckpointStore struct {
	fs  fsio.FS
	dir string

	failStreak atomic.Uint32
	degraded   atomic.Bool
	onDegrade  func(err error)

	saved       atomic.Uint64
	loaded      atomic.Uint64
	dropped     atomic.Uint64
	quarantined atomic.Uint64
}

// NewCheckpointStore opens (creating if needed) the checkpoint directory.
// fs nil means the real filesystem.
func NewCheckpointStore(dir string, fs fsio.FS) (*CheckpointStore, error) {
	fs = fsio.OrOS(fs)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &CheckpointStore{fs: fs, dir: dir}, nil
}

// OnDegrade registers a callback invoked once when checkpoint writes
// degrade. Must be set before the store is shared.
func (cs *CheckpointStore) OnDegrade(fn func(err error)) { cs.onDegrade = fn }

func (cs *CheckpointStore) path(d Digest) string {
	return cs.dir + "/" + string(d) + ".ckpt.json"
}

// Load returns the progress payload checkpointed for a job, if a valid
// one exists. A malformed, checksum-failing or mis-addressed file is
// quarantined and reported as absent.
func (cs *CheckpointStore) Load(d Digest) (json.RawMessage, bool) {
	if !d.Valid() {
		return nil, false
	}
	data, err := cs.fs.ReadFile(cs.path(d))
	if err != nil {
		return nil, false
	}
	var cf ckptFile
	if json.Unmarshal(data, &cf) == nil && cf.ID == d &&
		len(cf.Data) > 0 && cf.CRC == crc32.ChecksumIEEE(cf.Data) {
		cs.loaded.Add(1)
		return cf.Data, true
	}
	cs.quarantined.Add(1)
	//lint:allow errsink -- best-effort quarantine of an already-corrupt checkpoint; the counter is the signal
	_ = cs.fs.Rename(cs.path(d), cs.path(d)+".corrupt")
	return nil, false
}

// Save atomically replaces the job's checkpoint. Failures are counted
// and, after a streak, degrade the store — further saves become no-ops
// rather than hammering a sick disk.
func (cs *CheckpointStore) Save(d Digest, data json.RawMessage) error {
	if !d.Valid() || cs.degraded.Load() {
		return nil
	}
	buf, err := json.Marshal(ckptFile{CRC: crc32.ChecksumIEEE(data), ID: d, Data: data})
	if err == nil {
		err = fsio.WriteFileAtomic(cs.fs, cs.path(d), buf)
	}
	if err == nil {
		cs.failStreak.Store(0)
		cs.saved.Add(1)
		return nil
	}
	if cs.failStreak.Add(1) >= ckptDegradeAfter {
		if cs.degraded.CompareAndSwap(false, true) && cs.onDegrade != nil {
			cs.onDegrade(err)
		}
	}
	return err
}

// Drop removes a completed job's checkpoint; the result spool now owns
// the durable state.
func (cs *CheckpointStore) Drop(d Digest) {
	if !d.Valid() {
		return
	}
	if cs.fs.Remove(cs.path(d)) == nil {
		cs.dropped.Add(1)
	}
}

// Degraded reports whether checkpoint writes have been switched off.
func (cs *CheckpointStore) Degraded() bool { return cs.degraded.Load() }

// CheckpointStats is the serialisable store state for /v1/stats.
type CheckpointStats struct {
	Saved       uint64 `json:"saved"`
	Loaded      uint64 `json:"loaded"`
	Dropped     uint64 `json:"dropped"`
	Quarantined uint64 `json:"quarantined,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
}

// Stats snapshots the counters.
func (cs *CheckpointStore) Stats() CheckpointStats {
	return CheckpointStats{
		Saved:       cs.saved.Load(),
		Loaded:      cs.loaded.Load(),
		Dropped:     cs.dropped.Load(),
		Quarantined: cs.quarantined.Load(),
		Degraded:    cs.degraded.Load(),
	}
}
