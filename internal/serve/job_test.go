package serve

import (
	"strings"
	"testing"
)

func mustDecode(t *testing.T, src string) *JobSpec {
	t.Helper()
	s, err := DecodeSpec([]byte(src))
	if err != nil {
		t.Fatalf("DecodeSpec(%s): %v", src, err)
	}
	return s
}

func digestOf(t *testing.T, src string) Digest {
	t.Helper()
	_, d, err := mustDecode(t, src).Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	return d
}

func TestDecodeSpecInfersKind(t *testing.T) {
	s := mustDecode(t, `{"sweep":{"protocol":"can","berStar":0.01}}`)
	if s.Kind != KindSweep {
		t.Fatalf("inferred kind = %q, want %q", s.Kind, KindSweep)
	}
	if s.Version != SpecVersion {
		t.Fatalf("defaulted version = %d, want %d", s.Version, SpecVersion)
	}
	if s.Sweep.Nodes != 5 || s.Sweep.Frames != 1000 || s.Sweep.Seeds != 1 {
		t.Fatalf("sweep defaults not filled: %+v", s.Sweep)
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"sweep":{"protocol":"can","bogus":1}}`)); err == nil {
		t.Fatal("unknown field accepted; typos would silently change the job digest")
	}
	if _, err := DecodeSpec([]byte(`{"sweep":{"protocol":"can"}} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestDecodeSpecRejectsAmbiguousPayloads(t *testing.T) {
	_, err := DecodeSpec([]byte(`{"sweep":{"protocol":"can"},"verify":{"protocol":"can"}}`))
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("two payloads accepted (err=%v)", err)
	}
	_, err = DecodeSpec([]byte(`{"kind":"campaign","sweep":{"protocol":"can"}}`))
	if err == nil {
		t.Fatal("kind/payload mismatch accepted")
	}
	_, err = DecodeSpec([]byte(`{"kind":"sweep"}`))
	if err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestDigestNormalization(t *testing.T) {
	// Spelled-out defaults and omitted defaults are the same job.
	implicit := digestOf(t, `{"sweep":{"protocol":"can","berStar":0.01}}`)
	explicit := digestOf(t, `{"version":1,"kind":"sweep","sweep":{"protocol":"can","nodes":5,"frames":1000,"seeds":1,"seed":0,"berStar":0.01,"eofOnly":false,"resetCounters":false}}`)
	if implicit != explicit {
		t.Fatalf("defaults perturb the digest:\n  implicit %s\n  explicit %s", implicit, explicit)
	}
	// A semantic change is a different job.
	other := digestOf(t, `{"sweep":{"protocol":"can","berStar":0.01,"seed":9}}`)
	if other == implicit {
		t.Fatal("different seeds hash to the same digest")
	}
}

func TestDigestCampaignListCanonicalisation(t *testing.T) {
	a := digestOf(t, `{"campaign":{"protocol":"can","kinds":["mute","crash","mute"],"probes":["liveness","ab"]}}`)
	b := digestOf(t, `{"campaign":{"protocol":"can","kinds":["crash","mute"],"probes":["ab","liveness"]}}`)
	if a != b {
		t.Fatalf("list order/duplicates perturb the digest:\n  a %s\n  b %s", a, b)
	}
}

func TestDigestShort(t *testing.T) {
	d := digestOf(t, `{"sweep":{"protocol":"can"}}`)
	if len(d) != 64 {
		t.Fatalf("digest length %d, want 64 hex digits", len(d))
	}
	if len(d.Short()) != 12 {
		t.Fatalf("Short() length %d, want 12", len(d.Short()))
	}
}

func TestDecodeSpecVerifyAndScriptKinds(t *testing.T) {
	v := mustDecode(t, `{"verify":{"protocol":"majorcan_3","stations":4,"maxFlips":1}}`)
	if v.Kind != KindVerify {
		t.Fatalf("kind = %q, want %q", v.Kind, KindVerify)
	}
	s := mustDecode(t, `{"script":{"protocol":"can","nodes":5,"frames":1}}`)
	if s.Kind != KindScript {
		t.Fatalf("kind = %q, want %q", s.Kind, KindScript)
	}
	if s.Script.Version == 0 {
		t.Fatal("script version not defaulted")
	}
}
