package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// helperEnv carries the daemon flags into the re-executed test binary.
// When set, TestMain runs DaemonMain instead of the test suite, so the
// process the crash harness SIGKILLs is a real mcservd: same scheduler,
// same journal, same HTTP stack as production.
const helperEnv = "MCSERVD_HELPER_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(helperEnv); args != "" {
		os.Exit(DaemonMain(strings.Split(args, "\x1f")))
	}
	os.Exit(m.Run())
}

// daemonProc is one live daemon under test.
type daemonProc struct {
	cmd    *exec.Cmd
	addr   string
	client *Client
	logs   *bytes.Buffer
}

// startDaemon re-executes the test binary as an mcservd serving from
// dir/spool, and waits until it answers /v1/healthz. The listen port is
// kernel-assigned and read back through -portfile.
func startDaemon(t *testing.T, dir string) *daemonProc {
	t.Helper()
	portFile := filepath.Join(dir, fmt.Sprintf("port.%d", time.Now().UnixNano()))
	args := []string{
		"-addr", "127.0.0.1:0",
		"-portfile", portFile,
		"-spool", filepath.Join(dir, "spool"),
		"-checkpoint-every", "25",
		"-shards", "2",
		"-queue", "16",
		"-drain-timeout", "30s",
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
	logs := &bytes.Buffer{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &daemonProc{cmd: cmd, logs: logs}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			d.kill()
			t.Fatalf("daemon did not come up; logs:\n%s", logs.String())
		}
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			d.addr = string(b)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	d.client = NewClient("http://" + d.addr)
	for {
		if time.Now().After(deadline) {
			d.kill()
			t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		status, err := d.client.Healthz(ctx)
		cancel()
		if err == nil && status == "ok" {
			return d
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon and reaps it.
func (d *daemonProc) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(syscall.SIGKILL)
	}
	_, _ = d.cmd.Process.Wait()
}

// crashCampaignSpec is the long-running campaign the harness interrupts:
// hundreds of trials, so a SIGKILL lands mid-search, and several
// checkpoint boundaries pass before any kill point.
func crashCampaignSpec() *JobSpec {
	return &JobSpec{
		Kind: KindCampaign,
		Campaign: &chaos.CampaignSpec{
			Protocol: "can",
			Frames:   1,
			Trials:   4000,
			Seed:     21,
			Kinds:    []chaos.FaultKind{chaos.ViewFlip, chaos.StuckDominant},
			Probes:   []string{"agreement", "validity"},
		},
	}
}

// crashSweepSpec rides along as a second accepted job, so recovery is
// exercised with more than one pending journal record.
func crashSweepSpec() *JobSpec {
	return &JobSpec{
		Kind: KindSweep,
		Sweep: &sim.SweepSpec{
			Protocol:      "majorcan_5",
			Frames:        50,
			BerStar:       0.02,
			Seed:          7,
			Seeds:         24,
			EOFOnly:       true,
			ResetCounters: true,
		},
	}
}

// reference executes a spec in-process (no daemon, no checkpoints) and
// returns its canonical result bytes and how long it took.
func reference(t *testing.T, spec *JobSpec) (json.RawMessage, time.Duration) {
	t.Helper()
	spec.Normalize()
	start := time.Now()
	res, err := Execute(context.Background(), spec, ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res, time.Since(start)
}

// compactJSON normalises whitespace so results that crossed the HTTP
// layer (re-indented by the server's encoder) compare byte-for-byte.
func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.String()
}

// TestKillAndRecover is the crash harness the durability work exists
// for: a real daemon process is SIGKILLed at a randomized point during a
// campaign, restarted on the same spool, and must (a) still know every
// accepted job, (b) never serve a partial result, and (c) finish with
// bytes identical to an uninterrupted run. The number of kill points
// comes from CRASH_POINTS (default 4; `make crashsmoke` runs 20).
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns real daemon processes")
	}
	points := 4
	if v, err := strconv.Atoi(os.Getenv("CRASH_POINTS")); err == nil && v > 0 {
		points = v
	}
	campaign, campaignT := reference(t, crashCampaignSpec())
	sweep, _ := reference(t, crashSweepSpec())
	wantCampaign := compactJSON(t, campaign)
	wantSweep := compactJSON(t, sweep)

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("campaign reference %s; %d kill points, seed %d", campaignT, points, seed)

	for point := 0; point < points; point++ {
		// Kill anywhere from near-submit to near-complete (the in-process
		// reference time underestimates the daemon's, so the late end of
		// the range still lands mid-run — and a kill after completion just
		// proves the done-path is durable too).
		delay := time.Duration(float64(campaignT) * (0.05 + 0.9*rng.Float64()))
		t.Run(fmt.Sprintf("point%02d", point), func(t *testing.T) {
			dir := t.TempDir()
			d := startDaemon(t, dir)
			defer d.kill()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			sub1, err := d.client.Submit(ctx, crashCampaignSpec(), 0)
			if err != nil {
				t.Fatalf("submit campaign: %v", err)
			}
			sub2, err := d.client.Submit(ctx, crashSweepSpec(), 0)
			if err != nil {
				t.Fatalf("submit sweep: %v", err)
			}

			time.Sleep(delay)
			d.kill() // SIGKILL: no drain, no goodbye

			// Restart on the same spool: the journal must replay both
			// accepted jobs (or find their results already durable).
			d2 := startDaemon(t, dir)
			defer d2.kill()

			for _, tc := range []struct {
				name string
				id   Digest
				want string
			}{
				{"campaign", sub1.ID, wantCampaign},
				{"sweep", sub2.ID, wantSweep},
			} {
				st, err := d2.client.Job(ctx, tc.id)
				if err != nil {
					t.Fatalf("%s lost after crash (killed after %s): %v", tc.name, delay, err)
				}
				// No partial result may ever be visible: a result implies
				// the terminal done state.
				if len(st.Result) > 0 && st.State != StateDone {
					t.Fatalf("%s: state %s carries a result", tc.name, st.State)
				}
				if st.State != StateDone && st.State != StateFailed && !st.Recovered && !st.Cached {
					t.Errorf("%s: in-flight after restart but not marked recovered", tc.name)
				}
				final, err := d2.client.Wait(ctx, tc.id, 50*time.Millisecond)
				if err != nil {
					t.Fatalf("%s: wait after recovery: %v", tc.name, err)
				}
				if final.State != StateDone {
					t.Fatalf("%s: recovered job ended %s: %s", tc.name, final.State, final.Error)
				}
				if got := compactJSON(t, final.Result); got != tc.want {
					t.Errorf("%s: recovered result diverged from uninterrupted run\n got: %.120s…\nwant: %.120s…",
						tc.name, got, tc.want)
				}
			}

			st, err := d2.client.Stats(ctx)
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if !st.Durability.JournalEnabled {
				t.Error("restarted daemon reports journal disabled")
			}
		})
	}
}
