package serve

import (
	"io"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// WriteMetrics renders a stats snapshot in Prometheus text exposition
// format (version 0.0.4) — the GET /metrics surface. Every family
// carries the mc_ prefix; the output is guaranteed to pass
// obs.LintProm, which CI enforces by scraping a live daemon.
func WriteMetrics(w io.Writer, st Stats) error {
	p := obs.NewPromWriter(w)
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	gauge := func(name, help string, v float64) {
		p.Family(name, "gauge", help)
		p.Sample(name, nil, v)
	}
	counter := func(name, help string, v uint64) {
		p.Family(name, "counter", help)
		p.Sample(name, nil, float64(v))
	}

	gauge("mc_uptime_seconds", "Seconds since the scheduler started.", st.UptimeSeconds)
	gauge("mc_draining", "1 while the scheduler refuses new work for shutdown.", b(st.Draining))

	counter("mc_jobs_submitted_total", "Job specs admitted, including cache hits and coalesced duplicates.", st.Jobs.Submitted)
	counter("mc_jobs_coalesced_total", "Submissions merged into an already-running identical job.", st.Jobs.Coalesced)
	counter("mc_jobs_executed_total", "Jobs run to completion by a shard worker.", st.Jobs.Executed)
	counter("mc_jobs_retried_total", "Execution attempts beyond the first.", st.Jobs.Retried)
	counter("mc_jobs_failed_total", "Jobs that exhausted their attempts.", st.Jobs.Failed)
	counter("mc_jobs_rejected_queue_full_total", "Submissions rejected because the digest shard's queue was full.", st.Jobs.RejectedQueueFull)
	counter("mc_jobs_rejected_draining_total", "Submissions rejected during drain.", st.Jobs.RejectedDraining)

	gauge("mc_cache_entries", "Result-cache entries resident in memory.", float64(st.Cache.Entries))
	gauge("mc_cache_capacity", "Result-cache capacity in entries.", float64(st.Cache.Capacity))
	counter("mc_cache_hits_total", "Result-cache hits (memory or spool).", st.Cache.Hits)
	counter("mc_cache_misses_total", "Result-cache misses.", st.Cache.Misses)
	gauge("mc_cache_hit_ratio", "Hits over lookups since start.", st.Cache.HitRatio)
	counter("mc_cache_evictions_total", "Entries evicted from the in-memory cache.", st.Cache.Evictions)
	counter("mc_cache_spool_hits_total", "Misses satisfied from the on-disk spool.", st.Cache.SpoolHits)
	counter("mc_cache_spool_fails_total", "Spool reads that failed.", st.Cache.SpoolFails)
	counter("mc_cache_quarantined_total", "Corrupt spool entries quarantined.", st.Cache.Quarantined)

	p.Family("mc_queue_depth", "gauge", "Jobs waiting in each shard queue.")
	for i, sh := range st.Shards {
		p.Sample("mc_queue_depth", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Depth))
	}
	p.Family("mc_queue_capacity", "gauge", "Per-shard queue capacity.")
	for i, sh := range st.Shards {
		p.Sample("mc_queue_capacity", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Capacity))
	}
	p.Family("mc_shard_executed_total", "counter", "Jobs executed per shard.")
	for i, sh := range st.Shards {
		p.Sample("mc_shard_executed_total", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sh.Executed))
	}
	p.Family("mc_shard_utilization", "gauge", "Fraction of uptime each shard spent executing.")
	for i, sh := range st.Shards {
		p.Sample("mc_shard_utilization", []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, sh.Utilization)
	}

	p.Histogram("mc_job_latency_ms", "Job run latency (start to terminal state) in milliseconds.", st.Latency.Histogram)

	gauge("mc_journal_enabled", "1 when a write-ahead job journal is configured.", b(st.Durability.JournalEnabled))
	counter("mc_journal_appends_total", "Records durably appended to the job journal.", st.Durability.JournalAppends)
	p.Family("mc_storage_degraded", "gauge", "1 while a durable store has fallen back to memory-only after an I/O fault.")
	storageDegraded(p, st)
	counter("mc_jobs_recovered_total", "Accepted jobs replayed from the journal after a restart.", st.Durability.RecoveredJobs)
	if st.Durability.FsyncLatencyUs != nil {
		p.Histogram("mc_journal_fsync_latency_us", "Journal fsync latency per append, microseconds.", *st.Durability.FsyncLatencyUs)
	}
	if cs := st.Durability.Checkpoints; cs != nil {
		counter("mc_checkpoints_saved_total", "Sweep checkpoints durably saved.", cs.Saved)
		counter("mc_checkpoints_loaded_total", "Sweep checkpoints restored on resume.", cs.Loaded)
		counter("mc_checkpoints_dropped_total", "Checkpoint writes dropped while degraded.", cs.Dropped)
	}

	counter("mc_ring_overflow_total", "Per-job event rings that dropped at least one event.", st.Events.RingOverflows)
	counter("mc_events_dropped_total", "Events lost to full rings across finished jobs.", st.Events.DroppedEvents)

	counter("mc_sim_bits_total", "Bus bit slots simulated.", st.Sim.BitsSimulated)
	counter("mc_sim_frames_sent_total", "Frames delivered across all simulations.", st.Sim.FramesSent)
	counter("mc_sim_error_flags_primary_total", "Primary error flags raised.", st.Sim.ErrorFlagsPrimary)
	counter("mc_sim_error_flags_secondary_total", "Secondary (echoed) error flags raised.", st.Sim.ErrorFlagsSecondary)
	counter("mc_sim_retransmits_total", "Frame retransmissions.", st.Sim.Retransmits)
	counter("mc_sim_imos_total", "Inconsistent message omissions detected (CAN baseline).", st.Sim.IMOs)
	counter("mc_sim_eof_vote_corrected_total", "EOF majority votes that overruled a local view (MajorCAN).", st.Sim.EOFVoteCorrected)
	counter("mc_sim_bus_offs_total", "Stations that reached bus-off.", st.Sim.BusOffs)
	if len(st.Sim.ErrorFlagsByCause) > 0 {
		p.Family("mc_sim_error_flags_by_cause_total", "counter", "Error flags by detected error kind.")
		causes := make([]string, 0, len(st.Sim.ErrorFlagsByCause))
		for c := range st.Sim.ErrorFlagsByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			p.Sample("mc_sim_error_flags_by_cause_total",
				[]obs.Label{{Name: "cause", Value: c}}, float64(st.Sim.ErrorFlagsByCause[c]))
		}
	}

	if err := p.Err(); err != nil {
		return err
	}
	return p.Flush()
}

// storageDegraded renders the per-store degradation gauge: one series
// per durable store, 1 while that store has fallen back to memory-only.
func storageDegraded(p *obs.PromWriter, st Stats) {
	degraded := func(store string, v bool) {
		val := 0.0
		if v {
			val = 1
		}
		p.Sample("mc_storage_degraded", []obs.Label{{Name: "store", Value: store}}, val)
	}
	degraded("journal", st.Durability.JournalDegraded)
	degraded("spool", st.Cache.SpoolDegraded)
	ck := false
	if st.Durability.Checkpoints != nil {
		ck = st.Durability.Checkpoints.Degraded
	}
	degraded("checkpoint", ck)
}
