package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/chaos"
)

// TestCampaignResumeSaveGiveUp pins the checkpoint give-up latch: a
// consecutive run of Save failures disables checkpointing for the rest
// of the job instead of hammering a dead disk at every trial boundary.
func TestCampaignResumeSaveGiveUp(t *testing.T) {
	saves := 0
	ck := &CheckpointIO{
		Load:  func() (json.RawMessage, bool) { return nil, false },
		Save:  func(json.RawMessage) error { saves++; return errors.New("disk gone") },
		Every: 1,
	}
	_, onProgress := campaignResume(ck)
	for i := 1; i <= 20; i++ {
		onProgress(chaos.CampaignProgress{Trial: i})
	}
	if saves != ckptGiveUpAfter {
		t.Fatalf("Save calls = %d, want exactly %d before the latch trips", saves, ckptGiveUpAfter)
	}
}

// TestCampaignResumeSaveStreakResets checks that one successful Save
// clears the failure streak: isolated transient failures (a blip of
// ENOSPC that heals) never disable checkpointing.
func TestCampaignResumeSaveStreakResets(t *testing.T) {
	outcomes := []error{
		errors.New("blip"), errors.New("blip"), nil, // streak 2, then reset
		errors.New("gone"), errors.New("gone"), errors.New("gone"), // streak 3: latch
	}
	saves := 0
	ck := &CheckpointIO{
		Load: func() (json.RawMessage, bool) { return nil, false },
		Save: func(json.RawMessage) error {
			err := outcomes[saves%len(outcomes)]
			saves++
			return err
		},
		Every: 1,
	}
	_, onProgress := campaignResume(ck)
	for i := 1; i <= 20; i++ {
		onProgress(chaos.CampaignProgress{Trial: i})
	}
	if saves != len(outcomes) {
		t.Fatalf("Save calls = %d, want %d (streak resets on success, latches after %d consecutive failures)",
			saves, len(outcomes), ckptGiveUpAfter)
	}
}

// TestCampaignResumeSaveCadence checks the boundary cadence still holds
// alongside the latch: with Every=3, only every third boundary saves.
func TestCampaignResumeSaveCadence(t *testing.T) {
	saves := 0
	ck := &CheckpointIO{
		Load:  func() (json.RawMessage, bool) { return nil, false },
		Save:  func(json.RawMessage) error { saves++; return nil },
		Every: 3,
	}
	_, onProgress := campaignResume(ck)
	for i := 1; i <= 9; i++ {
		onProgress(chaos.CampaignProgress{Trial: i})
	}
	if saves != 3 {
		t.Fatalf("Save calls = %d, want 3 (boundaries 3, 6, 9)", saves)
	}
}
