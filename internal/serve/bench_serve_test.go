package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// benchSpec builds a distinct small sweep job per seed.
func benchSpec(b *testing.B, seed int64) *JobSpec {
	b.Helper()
	s, err := DecodeSpec([]byte(fmt.Sprintf(
		`{"sweep":{"protocol":"can","frames":20,"berStar":0.01,"seed":%d}}`, seed)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkJobsCold measures end-to-end jobs/sec when every submission is
// a distinct spec: each job runs the real simulator.
func BenchmarkJobsCold(b *testing.B) {
	s, err := NewScheduler(Config{Shards: 4, QueueDepth: 4096, CacheEntries: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _, err := s.Submit(benchSpec(b, int64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
	}
}

// BenchmarkJobsCacheHit measures jobs/sec when every submission after the
// first is byte-identical: the content-addressed cache answers without
// re-simulating. The cold/cached ratio is the serving layer's headline.
func BenchmarkJobsCacheHit(b *testing.B) {
	s, err := NewScheduler(Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	spec := benchSpec(b, 1)
	j, _, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, adm, err := s.Submit(benchSpec(b, 1))
		if err != nil {
			b.Fatal(err)
		}
		if adm != AdmissionCached {
			b.Fatalf("iteration %d not served from cache (%v)", i, adm)
		}
		<-j.Done()
	}
}

// BenchmarkSchedulerShards measures raw scheduler throughput (submit,
// route, execute a no-op, finalize) as the shard count grows, isolating
// queueing overhead from simulation cost.
func BenchmarkSchedulerShards(b *testing.B) {
	noop := func(ctx context.Context, spec *JobSpec, _ ExecOptions) (json.RawMessage, error) {
		return json.RawMessage(`0`), nil
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			s, err := NewScheduler(Config{
				Shards: shards, QueueDepth: 8192, CacheEntries: 1, Runner: noop,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			var seeds atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					// A unique seed per iteration keeps every digest
					// distinct, so nothing coalesces or caches.
					sw := sim.SweepSpec{Protocol: "can", Frames: 20,
						BerStar: 0.01, Seed: seeds.Add(1)}
					sw.Normalize()
					spec := &JobSpec{Version: SpecVersion, Kind: KindSweep, Sweep: &sw}
					j, _, err := s.Submit(spec)
					if err != nil {
						b.Fatal(err)
					}
					<-j.Done()
				}
			})
		})
	}
}
