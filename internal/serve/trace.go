package serve

import (
	"errors"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// ErrJobRunning reports a trace request for a job that has not reached
// a terminal state; the timeline is only complete at completion.
var ErrJobRunning = errors.New("serve: job not finished; trace is available at completion")

// BuildTrace renders a finished job's end-to-end timeline as a Perfetto
// trace: a service track group with the root job span, the queue wait,
// the execution attempts and the durability phases (journal appends,
// checkpoint saves, the cache put), plus one protocol track group per
// attempt with the per-station spans synthesised from the job's
// captured event stream. Timestamps are microseconds relative to the
// job's submission; an attempt's bit slots are scaled to fit its wall
// duration, so the protocol timeline nests under its attempt span.
func BuildTrace(j *Job) (*span.Trace, error) {
	j.mu.Lock()
	state := j.state
	phases := append([]jobPhase(nil), j.phases...)
	submitted, started, finished := j.submitted, j.started, j.finished
	attempts := j.attempts
	cached := j.cached
	recovered := j.recovered
	errMsg := j.errMsg
	j.mu.Unlock()
	if state != StateDone && state != StateFailed {
		return nil, ErrJobRunning
	}

	t0 := submitted
	if t0.IsZero() {
		// Cached and resynthesized records carry no queue timestamps;
		// anchor the (empty) timeline at whatever timestamps exist.
		t0 = started
	}
	us := func(t time.Time) float64 {
		if t.IsZero() || t.Before(t0) {
			return 0
		}
		return float64(t.Sub(t0).Microseconds())
	}

	tr := &span.Trace{}
	tr.Process(0, "service", 0)
	tr.Thread(0, 0, "job")
	tr.Thread(0, 1, "durability")

	rootArgs := map[string]any{
		"id":       j.digest.Short(),
		"kind":     string(j.spec.Kind),
		"state":    string(state),
		"attempts": attempts,
	}
	if cached {
		rootArgs["cached"] = true
	}
	if recovered {
		rootArgs["recovered"] = true
	}
	if errMsg != "" {
		rootArgs["error"] = errMsg
	}
	var capturedEvents []obs.Event
	if j.capture != nil {
		capturedEvents = j.capture.Events()
		rootArgs["events_captured"] = len(capturedEvents)
		if d := j.capture.Dropped(); d > 0 {
			rootArgs["events_beyond_capture"] = d
		}
	}
	if j.ring != nil {
		if d := j.ring.Dropped(); d > 0 {
			rootArgs["stream_events_dropped"] = d
		}
	}
	// The root span spans submission to completion — the same timestamps
	// JobStatus derives queuedMs and runMs from, so the trace and the
	// stats agree exactly.
	tr.Add(span.Span{
		Name: "job", Cat: "service", Pid: 0, Tid: 0,
		Start: 0, Dur: us(finished), Args: rootArgs,
	})
	if !started.IsZero() && !submitted.IsZero() {
		tr.Add(span.Span{
			Name: "queue wait", Cat: "service", Pid: 0, Tid: 0,
			Start: 0, Dur: us(started),
			Args: map[string]any{"shard": j.shard},
		})
	}

	// Attempt wall windows, for placing and scaling protocol segments.
	attemptWindow := make(map[int]jobPhase)
	for _, p := range phases {
		switch {
		case p.name == "attempt":
			attemptWindow[p.attempt] = p
			tr.Add(span.Span{
				Name: "attempt", Cat: "service", Pid: 0, Tid: 0,
				Start: us(p.start), Dur: us(p.end) - us(p.start),
				Args: map[string]any{"attempt": p.attempt},
			})
		default:
			tr.Add(span.Span{
				Name: p.name, Cat: "durability", Pid: 0, Tid: 1,
				Start: us(p.start), Dur: us(p.end) - us(p.start),
			})
		}
	}

	// Protocol timelines: the captured stream, split at attempt-retry
	// markers into one segment per execution attempt, each scaled into
	// its attempt's wall window.
	segments := [][]obs.Event{nil}
	for _, e := range capturedEvents {
		if e.Kind == obs.KindAttemptRetry {
			segments = append(segments, nil)
			continue
		}
		segments[len(segments)-1] = append(segments[len(segments)-1], e)
	}
	for i, seg := range segments {
		if len(seg) == 0 {
			continue
		}
		attempt := i + 1
		offset := us(started)
		slotMicros := 1.0
		if w, ok := attemptWindow[attempt]; ok {
			offset = us(w.start)
			if extent := span.Extent(seg); extent > 0 {
				if wall := us(w.end) - us(w.start); wall > 0 {
					slotMicros = wall / float64(extent)
				}
			}
		}
		label := "protocol"
		if len(segments) > 1 {
			label = "protocol (attempt " + itoa(attempt) + ")"
		}
		span.AddProtocol(tr, seg, span.ProtocolOptions{
			Pid:        int64(attempt),
			Label:      label,
			SortIndex:  attempt,
			Offset:     offset,
			SlotMicros: slotMicros,
		})
	}
	return tr, nil
}

// itoa avoids pulling fmt into the hot path of trace assembly for a
// two-digit attempt number.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	return itoa(n/10) + string([]byte{byte('0' + n%10)})
}
