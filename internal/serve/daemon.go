package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DaemonMain is the body of the mcservd command: flag parsing, scheduler
// construction (journal recovery included), HTTP serving and graceful
// drain. It lives in the library so the crash-recovery harness can run a
// real daemon process by re-executing the test binary — the process that
// gets SIGKILLed is byte-for-byte the code that ships.
//
// The returned int is the process exit code: 0 after a clean drain,
// nonzero on startup failure or an incomplete drain.
func DaemonMain(args []string) int {
	fs := flag.NewFlagSet("mcservd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8329", "listen address")
		shards       = fs.Int("shards", 4, "worker shards")
		queue        = fs.Int("queue", 64, "per-shard queue depth")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "per-attempt job timeout")
		retries      = fs.Int("retries", 1, "max retries for transient job failures")
		parallelism  = fs.Int("parallelism", 1, "intra-job parallelism (sweep points, verify patterns)")
		cacheEntries = fs.Int("cache", 256, "in-memory result cache entries")
		spool        = fs.String("spool", "", "result spool directory (empty = memory only)")
		journalPath  = fs.String("journal", "auto", "write-ahead job journal path (auto = <spool>/journal.wal, none = disabled)")
		ckptDir      = fs.String("checkpoints", "auto", "job checkpoint directory (auto = <spool>/checkpoints, none = disabled)")
		ckptEvery    = fs.Int("checkpoint-every", 8, "checkpoint cadence in work units (sweep points, campaign trials)")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Minute, "graceful drain budget on SIGTERM")
		portFile     = fs.String("portfile", "", "write the bound listen address to this file once serving")
		logFormat    = fs.String("log-format", "text", "log output format: text or json")
		captureEv    = fs.Int("capture-events", 0, "per-job trace capture buffer in events (0 = default)")
		engine       = fs.String("engine", string(sim.EngineFast), "bit-slot engine: fast or reference (identical traces)")
		mutexProf    = fs.String("mutexprofile", "", "write a mutex-contention profile here on clean exit")
		blockProf    = fs.String("blockprofile", "", "write a blocking-event profile here on clean exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcservd:", err)
		return 2
	}
	logger = logger.With("component", "mcservd")

	// The engine is an execution knob like parallelism: it changes how
	// fast jobs run, never their content-addressed results, so it is a
	// daemon flag and stays out of the job specs.
	if err := sim.SetDefaultEngine(sim.EngineChoice(*engine)); err != nil {
		fmt.Fprintln(os.Stderr, "mcservd:", err)
		return 2
	}

	// Contention profiling is opt-in and sampled at full rate; the
	// profiles are written when the daemon exits cleanly, so a drain (not
	// a SIGKILL) is required to get them.
	stopContention := obs.StartContention(*mutexProf, *blockProf)
	defer func() {
		if err := stopContention(); err != nil {
			logger.Warn("contention profile", "err", err)
		}
	}()

	resolve := func(v, def string) string {
		switch v {
		case "auto":
			if *spool == "" {
				return ""
			}
			return filepath.Join(*spool, def)
		case "none", "off":
			return ""
		}
		return v
	}

	sched, err := NewScheduler(Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		MaxRetries:      *retries,
		Parallelism:     *parallelism,
		CacheEntries:    *cacheEntries,
		CaptureEvents:   *captureEv,
		SpoolDir:        *spool,
		JournalPath:     resolve(*journalPath, "journal.wal"),
		CheckpointDir:   resolve(*ckptDir, "checkpoints"),
		CheckpointEvery: *ckptEvery,
		Logger:          logger,
		// Durability degradation and journal recovery land in the daemon
		// log as NDJSON. The no-op line hook makes the stream flush per
		// line: these events are rare and must be visible immediately —
		// buffered, they would never surface (nothing flushes a service
		// sink) and a crash would eat them.
		ServiceEvents: obs.NewJSONLStream(os.Stderr, 0, func() {}),
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("portfile write failed", "path", *portFile, "err", err)
			return 1
		}
	}
	srv := &http.Server{Handler: NewServer(sched)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("listening",
		"addr", ln.Addr().String(), "shards", *shards, "queue", *queue,
		"cache", *cacheEntries, "spool", *spool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain: reject new jobs (503), finish what is queued and running,
	// then close the listener. The HTTP server stays up through the
	// drain so clients see 503s, not connection resets.
	logger.Info("draining", "budget", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := sched.Drain(dctx)
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	st := sched.Stats()
	logger.Info("drained",
		"executed", st.Jobs.Executed, "coalesced", st.Jobs.Coalesced,
		"cache_hits", st.Cache.Hits, "failed", st.Jobs.Failed,
		"recovered", st.Durability.RecoveredJobs)
	if drainErr != nil {
		logger.Error("drain incomplete", "err", drainErr)
		return 1
	}
	return 0
}
