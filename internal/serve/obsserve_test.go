package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// disturbedScript is a single-frame CAN broadcast where station 1's view
// of the first EOF bit flips on the first attempt: every station rejects
// the frame, an error flag and a retransmission follow, and the retry is
// accepted — the minimal job whose trace must show an EOF vote round for
// a retransmitted frame.
const disturbedScript = `{"script":{"version":1,"protocol":"can","nodes":3,"frames":1,
"faults":[{"kind":"view-flip","station":1,"eofRel":1,"attempt":1}]}}`

// traceDoc decodes the fields of a Chrome trace-event export the tests
// assert on.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int64          `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestServiceTraceEndpoint runs the disturbed chaos script through the
// full HTTP stack, downloads the trace, and checks the acceptance
// criteria: valid JSON with a root job span whose duration matches the
// job's reported latency within 1%, and eof-vote spans for both the
// rejected attempt and the accepted retransmission.
func TestServiceTraceEndpoint(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 1})
	ctx := context.Background()

	resp, err := client.Submit(ctx, mustDecode(t, disturbedScript), -1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status.State != StateDone {
		t.Fatalf("job state %q, want done", resp.Status.State)
	}

	raw, err := client.Trace(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}

	counts := map[string]int{}
	var rootDur float64
	var rootArgs map[string]any
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		counts[e.Name]++
		if e.Name == "job" && e.Pid == 0 {
			rootDur = e.Dur
			rootArgs = e.Args
		}
	}
	if counts["job"] != 1 {
		t.Fatalf("root job spans = %d, want 1", counts["job"])
	}
	// Root span duration vs reported latency: the trace is in µs, the
	// status in ms, both derived from the same timestamps, so they must
	// agree within rounding — far inside the 1% acceptance bound.
	wantMs := float64(resp.Status.QueuedMs + resp.Status.RunMs)
	gotMs := rootDur / 1000
	if diff := math.Abs(gotMs - wantMs); diff > 1+0.01*wantMs {
		t.Errorf("root span %.3fms vs status latency %.0fms (diff %.3fms)", gotMs, wantMs, diff)
	}
	if rootArgs["state"] != "done" {
		t.Errorf("root span state arg = %v, want done", rootArgs["state"])
	}

	// The disturbed frame: one reject vote round per station, one accept
	// round per station on the retransmission, and the error-flag and
	// retransmit spans between them.
	if counts["eof-vote reject"] != 3 || counts["eof-vote accept"] != 3 {
		t.Errorf("eof-vote spans reject=%d accept=%d, want 3 and 3",
			counts["eof-vote reject"], counts["eof-vote accept"])
	}
	if counts["retransmit"] != 1 {
		t.Errorf("retransmit spans = %d, want 1", counts["retransmit"])
	}
	if counts["frame"] != 2 {
		t.Errorf("frame spans = %d, want 2", counts["frame"])
	}
	if counts["queue wait"] != 1 {
		t.Errorf("queue wait spans = %d, want 1", counts["queue wait"])
	}
	if counts["journal accept"] != 0 {
		t.Errorf("journal accept spans = %d with no journal configured, want 0", counts["journal accept"])
	}
	if counts["attempt"] == 0 {
		t.Error("no attempt span")
	}
}

// TestServiceTraceConflictWhileRunning holds a job in execution and
// checks the trace endpoint answers 409 until it finishes.
func TestServiceTraceConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg := Config{Shards: 1, Runner: func(ctx context.Context, spec *JobSpec, opt ExecOptions) (json.RawMessage, error) {
		started <- struct{}{}
		<-release
		return json.RawMessage(`{"ok":true}`), nil
	}}
	client, _, _ := newTestService(t, cfg)
	ctx := context.Background()

	resp, err := client.Submit(ctx, mustDecode(t, smallSweep), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := client.Trace(ctx, resp.ID); err == nil || !strings.Contains(err.Error(), "not finished") {
		t.Fatalf("trace of running job: err = %v, want a not-finished conflict", err)
	}
	close(release)
	if _, err := client.Wait(ctx, resp.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Trace(ctx, resp.ID); err != nil {
		t.Fatalf("trace after completion: %v", err)
	}
}

// TestServiceTraceWithJournalPhases checks that a journal-backed job's
// trace carries the durability phase spans at plausible offsets.
func TestServiceTraceWithJournalPhases(t *testing.T) {
	dir := t.TempDir()
	client, _, _ := newTestService(t, Config{Shards: 1, SpoolDir: dir, JournalPath: dir + "/journal.wal"})
	ctx := context.Background()

	resp, err := client.Submit(ctx, mustDecode(t, disturbedScript), -1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := client.Trace(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var rootEnd float64
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch e.Name {
		case "job":
			rootEnd = e.Ts + e.Dur
		case "journal accept", "journal done", "cache put":
			phases[e.Name]++
			if e.Ts < 0 || e.Ts+e.Dur > rootEnd+1000 {
				t.Errorf("%s span [%v, %v] outside the job window (end %v)", e.Name, e.Ts, e.Ts+e.Dur, rootEnd)
			}
		}
	}
	for _, name := range []string{"journal accept", "journal done", "cache put"} {
		if phases[name] != 1 {
			t.Errorf("%s spans = %d, want 1", name, phases[name])
		}
	}
}

// TestServiceMetricsEndpoint scrapes /metrics from the live HTTP stack
// and checks the output passes the Prometheus text-format lint and
// carries the key families with believable values.
func TestServiceMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	client, _, _ := newTestService(t, Config{Shards: 2, SpoolDir: dir, JournalPath: dir + "/journal.wal"})
	ctx := context.Background()

	if _, err := client.Submit(ctx, mustDecode(t, smallSweep), -1); err != nil {
		t.Fatal(err)
	}
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintProm(bytes.NewReader(text)); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v\n%s", err, text)
	}
	s := string(text)
	for _, needle := range []string{
		"mc_jobs_submitted_total 1",
		"mc_jobs_executed_total 1",
		"mc_queue_depth{shard=\"0\"}",
		"mc_queue_depth{shard=\"1\"}",
		"mc_job_latency_ms_bucket",
		"mc_journal_fsync_latency_us_count 2",
		"mc_storage_degraded{store=\"journal\"} 0",
		"mc_sim_bits_total",
		"mc_ring_overflow_total 0",
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("/metrics missing %q", needle)
		}
	}
}

// TestServiceRingOverflowSurfaced runs a job whose event volume dwarfs a
// tiny ring with no streamer attached, and checks the loss is counted —
// in /v1/stats, in /metrics, and on the job status — instead of
// vanishing.
func TestServiceRingOverflowSurfaced(t *testing.T) {
	client, _, _ := newTestService(t, Config{Shards: 1, EventRing: 16})
	ctx := context.Background()

	resp, err := client.Submit(ctx, mustDecode(t, smallSweep), -1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Job(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsDropped == 0 {
		t.Fatal("job status reports no dropped events despite a 16-slot ring")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events.RingOverflows != 1 {
		t.Errorf("stats ring overflows = %d, want 1", stats.Events.RingOverflows)
	}
	if stats.Events.DroppedEvents == 0 {
		t.Error("stats dropped events = 0, want > 0")
	}
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "mc_ring_overflow_total 1") {
		t.Error("/metrics missing mc_ring_overflow_total 1")
	}
}
