// Command verify exhaustively enumerates every disturbance pattern with up
// to k view flips in the end-of-frame decision region and checks the
// protocol's consistency — the bounded model-checking pass the paper left
// as future work.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/verify"
)

func parsePolicy(s string) (node.EOFPolicy, error) {
	switch {
	case strings.EqualFold(s, "can"):
		return core.NewStandard(), nil
	case strings.EqualFold(s, "minorcan"):
		return core.NewMinorCAN(), nil
	case strings.HasPrefix(strings.ToLower(s), "majorcan"):
		m := core.DefaultM
		if i := strings.IndexByte(s, '_'); i >= 0 {
			v, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return nil, fmt.Errorf("invalid m in %q: %v", s, err)
			}
			m = v
		}
		return core.NewMajorCAN(m)
	default:
		return nil, fmt.Errorf("unknown policy %q", s)
	}
}

func main() {
	policyName := flag.String("policy", "majorcan_5", "protocol: can, minorcan or majorcan_<m>")
	stations := flag.Int("stations", 4, "number of stations (station 0 transmits)")
	k := flag.Int("k", 2, "maximum number of simultaneous view flips")
	positions := flag.Int("positions", 0, "EOF-relative positions to disturb (0 = the policy's full decision region)")
	parallel := flag.Int("parallel", 4, "concurrent simulations")
	crash := flag.Bool("crash", false, "also crash each station at its first flag, per pattern")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		}
		os.Exit(code)
	}

	policy, err := parsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		exit(1)
	}
	//lint:allow determinism -- CLI elapsed-time display; not simulation state
	start := time.Now()
	rep, err := verify.Exhaustive(verify.Config{
		Policy:      policy,
		Stations:    *stations,
		MaxFlips:    *k,
		Positions:   *positions,
		Parallelism: *parallel,
		CrashSweep:  *crash,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		exit(1)
	}
	fmt.Println(rep.Summary())
	//lint:allow determinism -- CLI elapsed-time display; not simulation state
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	if !rep.Consistent() {
		byOutcome := map[verify.Outcome]int{}
		for _, v := range rep.Violations {
			byOutcome[v.Outcome]++
		}
		fmt.Printf("violations by outcome: %v\n", byOutcome)
		exit(2)
	}
	exit(0)
}
