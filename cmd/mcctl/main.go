// Command mcctl is the client for the simulation service (mcservd).
//
//	mcctl -server http://127.0.0.1:8329 submit sweep.json   # submit, print digest
//	mcctl submit -wait campaign.json                        # submit and block
//	mcctl get <digest>                                      # job status + result
//	mcctl wait <digest>                                     # poll to completion
//	mcctl watch <digest>                                    # stream NDJSON events
//	mcctl stats                                             # scheduler statistics
//	mcctl stats -watch                                      # live-refresh summary line
//	mcctl trace <digest>                                    # Perfetto trace download
//	mcctl metrics -lint                                     # Prometheus scrape + lint
//	mcctl health                                            # ok | degraded | draining
//	mcctl fleet                                             # coordinator: workers + shard progress
//	mcctl fleet -watch                                      # stream fleet lifecycle events
//
// Job specs are the canonical JSON format shared with mcsim -spec and
// chaos -spec: byte-identical resubmits are answered from the service's
// content-addressed cache without re-simulating.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mcctl [-server URL] <command> [args]

commands:
  submit [-wait] [-timeout D] [-retries N] <spec.json|->
                                              submit a job spec (- reads stdin);
                                              429s retry after the service's Retry-After
  get <digest>                                fetch job status and result
  wait [-poll D] <digest>                     poll a job to completion
  watch [-follow=false] <digest>              stream the job's events as NDJSON,
                                              reconnecting dropped streams
  stats [-watch] [-interval D]                print scheduler statistics; -watch
                                              live-refreshes a summary line with deltas
  trace [-o FILE] <digest>                    download a finished job's Perfetto trace
                                              (Chrome trace-event JSON; open in ui.perfetto.dev)
  metrics [-lint]                             print the Prometheus /metrics exposition;
                                              -lint validates the format and prints nothing
  health                                      print service health
  fleet [-watch]                              against a coordinator: print the worker pool
                                              and per-job shard progress; -watch streams the
                                              fleet event log as NDJSON, reconnecting
                                              dropped streams`)
}

func run() int {
	server := flag.String("server", envOr("MCSERVD_URL", "http://127.0.0.1:8329"), "service base URL")
	flag.Usage = func() { usage() }
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := serve.NewClient(*server)

	var err error
	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "submit":
		err = cmdSubmit(ctx, client, args)
	case "get":
		err = cmdGet(ctx, client, args)
	case "wait":
		err = cmdWait(ctx, client, args)
	case "watch":
		err = cmdWatch(ctx, client, args)
	case "stats":
		err = cmdStats(ctx, client, args)
	case "trace":
		err = cmdTrace(ctx, client, args)
	case "metrics":
		err = cmdMetrics(ctx, client, args)
	case "health":
		err = cmdHealth(ctx, client)
	case "fleet":
		err = cmdFleet(ctx, client, args)
	default:
		fmt.Fprintf(os.Stderr, "mcctl: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcctl: %v\n", err)
		var ae *serve.APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			fmt.Fprintf(os.Stderr, "mcctl: service busy; retry after %s\n", ae.RetryAfter)
		}
		return 1
	}
	return 0
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

func readSpec(path string) (*serve.JobSpec, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return serve.DecodeSpec(data)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdSubmit(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	wait := fs.Bool("wait", false, "block until the job completes")
	timeout := fs.Duration("timeout", 0, "bound the wait (0 = unbounded)")
	retries := fs.Int("retries", 3, "attempts when the service answers 429 (honors Retry-After)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("submit needs exactly one spec file (or - for stdin)")
	}
	spec, err := readSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	w := time.Duration(0)
	if *wait {
		w = -1
		if *timeout > 0 {
			w = *timeout
		}
	}
	resp, err := client.SubmitRetry(ctx, spec, w, *retries)
	if err != nil {
		return err
	}
	return printJSON(resp)
}

func parseDigestArg(args []string) (serve.Digest, error) {
	if len(args) != 1 {
		return "", errors.New("need exactly one job digest")
	}
	return serve.Digest(args[0]), nil
}

func cmdGet(ctx context.Context, client *serve.Client, args []string) error {
	d, err := parseDigestArg(args)
	if err != nil {
		return err
	}
	st, err := client.Job(ctx, d)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdWait(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("wait", flag.ContinueOnError)
	poll := fs.Duration("poll", 250*time.Millisecond, "poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := parseDigestArg(fs.Args())
	if err != nil {
		return err
	}
	st, err := client.Wait(ctx, d, *poll)
	if err != nil {
		return err
	}
	if perr := printJSON(st); perr != nil {
		return perr
	}
	if st.State == serve.StateFailed {
		return fmt.Errorf("job %s failed: %s", d.Short(), st.Error)
	}
	return nil
}

func cmdWatch(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	follow := fs.Bool("follow", true, "reconnect dropped streams with backoff, resuming at the last seen line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := parseDigestArg(fs.Args())
	if err != nil {
		return err
	}
	emit := func(line []byte) error {
		_, werr := fmt.Fprintf(os.Stdout, "%s\n", line)
		return werr
	}
	if *follow {
		return client.Watch(ctx, d, emit)
	}
	return client.Events(ctx, d, emit)
}

func cmdStats(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "live-refresh a one-line summary until interrupted")
	interval := fs.Duration("interval", time.Second, "refresh interval for -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*watch {
		st, err := client.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(st)
	}
	return watchStats(ctx, client, *interval)
}

// watchStats polls /v1/stats and repaints one status line in place:
// queue depth, throughput deltas since the previous sample, run-latency
// quantiles, cache hit ratio and event-loss counters.
func watchStats(ctx context.Context, client *serve.Client, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	line := obs.NewStatusLine(os.Stdout)
	defer line.Close("")
	var prev *serve.Stats
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := client.Stats(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil // interrupted mid-request
			}
			return err
		}
		depth := 0
		for _, sh := range st.Shards {
			depth += sh.Depth
		}
		var dSub, dExec uint64
		if prev != nil {
			dSub = st.Jobs.Submitted - prev.Jobs.Submitted
			dExec = st.Jobs.Executed - prev.Jobs.Executed
		}
		status := fmt.Sprintf(
			"up %s | queue %d | jobs %d (+%d) done %d (+%d) failed %d | p50 %dms p99 %dms | cache %.1f%% | drops %d",
			(time.Duration(st.UptimeSeconds)*time.Second).String(),
			depth, st.Jobs.Submitted, dSub, st.Jobs.Executed, dExec, st.Jobs.Failed,
			st.Latency.P50Ms, st.Latency.P99Ms, 100*st.Cache.HitRatio,
			st.Events.DroppedEvents)
		if st.Draining {
			status = "DRAINING | " + status
		}
		line.Update(status)
		prev = st
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

func cmdTrace(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	out := fs.String("o", "", "write the trace to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := parseDigestArg(fs.Args())
	if err != nil {
		return err
	}
	data, err := client.Trace(ctx, d)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mcctl: wrote %d bytes to %s (open in ui.perfetto.dev)\n", len(data), *out)
	return nil
}

func cmdMetrics(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	lint := fs.Bool("lint", false, "validate the exposition format instead of printing it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := client.MetricsText(ctx)
	if err != nil {
		return err
	}
	if *lint {
		if err := obs.LintProm(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("metrics lint: %w", err)
		}
		fmt.Fprintln(os.Stderr, "mcctl: metrics exposition ok")
		return nil
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cmdHealth(ctx context.Context, client *serve.Client) error {
	status, err := client.Healthz(ctx)
	if err != nil {
		return err
	}
	fmt.Println(status)
	return nil
}

// cmdFleet talks to a coordinator: the default prints the /v1/fleet
// view (worker pool plus per-job shard progress) as JSON; -watch
// streams the coordinator-wide event log, riding the same reconnecting
// NDJSON engine the per-job watch uses — dropped connections resume at
// the last seen line.
func cmdFleet(ctx context.Context, client *serve.Client, args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "stream fleet lifecycle events as NDJSON until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch {
		err := client.WatchLines(ctx, "/v1/fleet/events", func(line []byte) error {
			_, werr := fmt.Fprintf(os.Stdout, "%s\n", line)
			return werr
		}, nil)
		if ctx.Err() != nil {
			return nil // interrupted: a clean exit, not a stream failure
		}
		return err
	}
	var view fleet.FleetView
	if err := client.GetJSON(ctx, "/v1/fleet", &view); err != nil {
		return err
	}
	return printJSON(view)
}
