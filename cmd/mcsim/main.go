// Command mcsim runs Monte Carlo consistency experiments on the bit-level
// simulator: a stream of frames is broadcast under the spatial random
// error model (ber* = ber/N) and every frame's fate at every receiver is
// classified (delivered, duplicated, omitted).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	policyName := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1000, "frames to broadcast")
	berStar := flag.Float64("berstar", 0.01, "per-node per-bit view flip probability (ber* = ber/N)")
	seed := flag.Int64("seed", 1, "random seed")
	eofOnly := flag.Bool("eofonly", true, "restrict errors to the end-of-frame region (importance sampling)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	reset := flag.Bool("reset", true, "reset error counters between frames (keep all nodes error-active)")
	sweep := flag.Int("sweep", 0, "run this many seeds (seed, seed+1, ...) in parallel and aggregate")
	parallel := flag.Int("parallel", 4, "concurrent simulations during a sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	eventsPath := flag.String("events", "", "write the protocol event stream as JSONL to this file")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON to this file")
	progress := flag.Bool("progress", false, "live frames/sec and ETA on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	stopProf, err := obs.StartProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		}
		os.Exit(code)
	}
	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
		exit(1)
	}

	policy, err := chaos.ParseProtocol(*policyName)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := sim.MCConfig{
		Policy:        policy,
		Nodes:         *nodes,
		Frames:        *frames,
		BerStar:       *berStar,
		Seed:          *seed,
		EOFOnly:       *eofOnly,
		RotateOrigins: *rotate,
		ResetCounters: *reset,
	}

	var metrics *obs.Metrics
	if *metricsPath != "" || *progress {
		metrics = obs.NewMetrics()
		metrics.SetLabel(policy.Name())
	}
	//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
	start := time.Now()
	finishTelemetry := func() {
		if *metricsPath != "" {
			//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
			if err := writeMetrics(*metricsPath, metrics, time.Since(start)); err != nil {
				fatalf("%v", err)
			}
		}
	}

	if *sweep > 0 {
		// SIGINT/SIGTERM cancel the sweep gracefully: running points
		// finish, unstarted points are skipped, and the partial aggregate
		// is flushed instead of dying silently.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		seeds := make([]int64, *sweep)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}

		// Per-point telemetry: an in-memory event sink per seed (merged in
		// seed order afterwards, so the JSONL output is byte-identical for
		// any -parallel value) and a fork of the shared metrics registry
		// (so -progress can read live totals while workers run).
		var mems []*obs.Memory
		var tel sim.PointTelemetry
		if *eventsPath != "" || metrics != nil {
			mems = make([]*obs.Memory, len(seeds))
			for i := range mems {
				mems[i] = obs.NewMemory()
			}
			tel = func(i int, _ int64) (obs.Sink, *obs.Metrics) {
				var m *obs.Metrics
				if metrics != nil {
					m = metrics.Fork()
				}
				if *eventsPath == "" {
					return nil, m
				}
				return mems[i], m
			}
		}
		var prog *obs.Progress
		if *progress {
			prog = obs.StartProgress(os.Stderr, uint64(*sweep)*uint64(*frames), metrics.FramesSent, 0, "frames")
		}
		points := sim.SweepSeedsObserved(ctx, cfg, seeds, *parallel, tel)
		if prog != nil {
			prog.Stop()
		}
		summary := sim.Summarize(points)
		for _, p := range points {
			if p.Err != nil && !errors.Is(p.Err, context.Canceled) && !errors.Is(p.Err, context.DeadlineExceeded) {
				fatalf("seed %d: %v", p.Seed, p.Err)
			}
		}
		if *eventsPath != "" {
			if err := writeSweepEvents(*eventsPath, seeds, mems); err != nil {
				fatalf("%v", err)
			}
		}
		finishTelemetry()
		fmt.Printf("policy=%s nodes=%d frames/seed=%d ber*=%g eofOnly=%v seeds=%d..%d\n",
			policy.Name(), *nodes, *frames, *berStar, *eofOnly, *seed, *seed+int64(*sweep)-1)
		fmt.Println(summary)
		if summary.Cancelled > 0 {
			fmt.Printf("interrupted: %d of %d points skipped; aggregate covers completed points only\n",
				summary.Cancelled, summary.Points)
			exit(130)
		}
		exit(0)
	}

	var events *obs.Memory
	if *eventsPath != "" {
		events = obs.NewMemory()
		cfg.Events = events
	}
	cfg.Metrics = metrics
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, uint64(*frames), metrics.FramesSent, 0, "frames")
	}
	res, err := sim.MonteCarlo(cfg)
	if prog != nil {
		prog.Stop()
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *eventsPath != "" {
		if err := writeSweepEvents(*eventsPath, []int64{*seed}, []*obs.Memory{events}); err != nil {
			fatalf("%v", err)
		}
	}
	finishTelemetry()

	if *jsonOut {
		type out struct {
			Policy          string  `json:"policy"`
			Nodes           int     `json:"nodes"`
			Frames          int     `json:"frames"`
			BerStar         float64 `json:"berStar"`
			EOFOnly         bool    `json:"eofOnly"`
			Seed            int64   `json:"seed"`
			Slots           uint64  `json:"slots"`
			BitFlips        uint64  `json:"bitFlips"`
			IMOs            int     `json:"inconsistentOmissions"`
			Duplicates      int     `json:"doubleReceptions"`
			LostEverywhere  int     `json:"lostEverywhere"`
			Incomplete      int     `json:"incomplete"`
			AtomicBroadcast bool    `json:"atomicBroadcast"`
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out{
			Policy: policy.Name(), Nodes: *nodes, Frames: res.FramesSent,
			BerStar: *berStar, EOFOnly: *eofOnly, Seed: *seed,
			Slots: res.Slots, BitFlips: res.BitFlips,
			IMOs: res.IMOs, Duplicates: res.Duplicates,
			LostEverywhere: res.LostEverywhere, Incomplete: res.Incomplete,
			AtomicBroadcast: res.Report.AtomicBroadcast(),
		}); err != nil {
			fatalf("%v", err)
		}
		exit(0)
	}

	fmt.Printf("policy=%s nodes=%d frames=%d ber*=%g eofOnly=%v seed=%d\n",
		policy.Name(), *nodes, res.FramesSent, *berStar, *eofOnly, *seed)
	fmt.Printf("slots simulated:        %d\n", res.Slots)
	fmt.Printf("bit flips injected:     %d\n", res.BitFlips)
	fmt.Printf("inconsistent omissions: %d (%.3e per frame)\n", res.IMOs, res.IMORate())
	fmt.Printf("double receptions:      %d (%.3e per frame)\n", res.Duplicates, res.DuplicateRate())
	fmt.Printf("lost everywhere:        %d\n", res.LostEverywhere)
	fmt.Printf("incomplete frames:      %d\n", res.Incomplete)
	fmt.Println()
	fmt.Println(res.Report.Summary())
	exit(0)
}

// writeMetrics writes a registry snapshot as indented JSON.
func writeMetrics(path string, m *obs.Metrics, elapsed time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Snapshot(elapsed)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSweepEvents serialises per-point event logs to one JSONL file in
// seed order, each point's events canonically sorted and tagged with its
// seed, so the merged log is byte-identical for any worker count.
func writeSweepEvents(path string, seeds []int64, mems []*obs.Memory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, mem := range mems {
		if mem == nil {
			continue
		}
		if err := obs.WriteJSONL(f, seeds[i], mem.Events()); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
