// Command mcsim runs Monte Carlo consistency experiments on the bit-level
// simulator: a stream of frames is broadcast under the spatial random
// error model (ber* = ber/N) and every frame's fate at every receiver is
// classified (delivered, duplicated, omitted).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
)

func parsePolicy(s string) (node.EOFPolicy, error) {
	switch {
	case strings.EqualFold(s, "can"):
		return core.NewStandard(), nil
	case strings.EqualFold(s, "minorcan"):
		return core.NewMinorCAN(), nil
	case strings.HasPrefix(strings.ToLower(s), "majorcan"):
		m := core.DefaultM
		if i := strings.IndexByte(s, '_'); i >= 0 {
			v, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return nil, fmt.Errorf("invalid m in %q: %v", s, err)
			}
			m = v
		}
		return core.NewMajorCAN(m)
	default:
		return nil, fmt.Errorf("unknown policy %q (use can, minorcan, majorcan_<m>)", s)
	}
}

func main() {
	policyName := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1000, "frames to broadcast")
	berStar := flag.Float64("berstar", 0.01, "per-node per-bit view flip probability (ber* = ber/N)")
	seed := flag.Int64("seed", 1, "random seed")
	eofOnly := flag.Bool("eofonly", true, "restrict errors to the end-of-frame region (importance sampling)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	reset := flag.Bool("reset", true, "reset error counters between frames (keep all nodes error-active)")
	sweep := flag.Int("sweep", 0, "run this many seeds (seed, seed+1, ...) in parallel and aggregate")
	parallel := flag.Int("parallel", 4, "concurrent simulations during a sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(1)
	}
	cfg := sim.MCConfig{
		Policy:        policy,
		Nodes:         *nodes,
		Frames:        *frames,
		BerStar:       *berStar,
		Seed:          *seed,
		EOFOnly:       *eofOnly,
		RotateOrigins: *rotate,
		ResetCounters: *reset,
	}

	if *sweep > 0 {
		seeds := make([]int64, *sweep)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		points := sim.SweepSeeds(cfg, seeds, *parallel)
		for _, p := range points {
			if p.Err != nil {
				fmt.Fprintf(os.Stderr, "mcsim: seed %d: %v\n", p.Seed, p.Err)
				os.Exit(1)
			}
		}
		fmt.Printf("policy=%s nodes=%d frames/seed=%d ber*=%g eofOnly=%v seeds=%d..%d\n",
			policy.Name(), *nodes, *frames, *berStar, *eofOnly, *seed, *seed+int64(*sweep)-1)
		fmt.Println(sim.Summarize(points))
		return
	}

	res, err := sim.MonteCarlo(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		type out struct {
			Policy          string  `json:"policy"`
			Nodes           int     `json:"nodes"`
			Frames          int     `json:"frames"`
			BerStar         float64 `json:"berStar"`
			EOFOnly         bool    `json:"eofOnly"`
			Seed            int64   `json:"seed"`
			Slots           uint64  `json:"slots"`
			BitFlips        uint64  `json:"bitFlips"`
			IMOs            int     `json:"inconsistentOmissions"`
			Duplicates      int     `json:"doubleReceptions"`
			LostEverywhere  int     `json:"lostEverywhere"`
			Incomplete      int     `json:"incomplete"`
			AtomicBroadcast bool    `json:"atomicBroadcast"`
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out{
			Policy: policy.Name(), Nodes: *nodes, Frames: res.FramesSent,
			BerStar: *berStar, EOFOnly: *eofOnly, Seed: *seed,
			Slots: res.Slots, BitFlips: res.BitFlips,
			IMOs: res.IMOs, Duplicates: res.Duplicates,
			LostEverywhere: res.LostEverywhere, Incomplete: res.Incomplete,
			AtomicBroadcast: res.Report.AtomicBroadcast(),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("policy=%s nodes=%d frames=%d ber*=%g eofOnly=%v seed=%d\n",
		policy.Name(), *nodes, res.FramesSent, *berStar, *eofOnly, *seed)
	fmt.Printf("slots simulated:        %d\n", res.Slots)
	fmt.Printf("bit flips injected:     %d\n", res.BitFlips)
	fmt.Printf("inconsistent omissions: %d (%.3e per frame)\n", res.IMOs, res.IMORate())
	fmt.Printf("double receptions:      %d (%.3e per frame)\n", res.Duplicates, res.DuplicateRate())
	fmt.Printf("lost everywhere:        %d\n", res.LostEverywhere)
	fmt.Printf("incomplete frames:      %d\n", res.Incomplete)
	fmt.Println()
	fmt.Println(res.Report.Summary())
}
