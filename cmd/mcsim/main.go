// Command mcsim runs Monte Carlo consistency experiments on the bit-level
// simulator: a stream of frames is broadcast under the spatial random
// error model (ber* = ber/N) and every frame's fate at every receiver is
// classified (delivered, duplicated, omitted).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/chaos"
	"repro/internal/sim"
)

func main() {
	policyName := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1000, "frames to broadcast")
	berStar := flag.Float64("berstar", 0.01, "per-node per-bit view flip probability (ber* = ber/N)")
	seed := flag.Int64("seed", 1, "random seed")
	eofOnly := flag.Bool("eofonly", true, "restrict errors to the end-of-frame region (importance sampling)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	reset := flag.Bool("reset", true, "reset error counters between frames (keep all nodes error-active)")
	sweep := flag.Int("sweep", 0, "run this many seeds (seed, seed+1, ...) in parallel and aggregate")
	parallel := flag.Int("parallel", 4, "concurrent simulations during a sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	policy, err := chaos.ParseProtocol(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(1)
	}
	cfg := sim.MCConfig{
		Policy:        policy,
		Nodes:         *nodes,
		Frames:        *frames,
		BerStar:       *berStar,
		Seed:          *seed,
		EOFOnly:       *eofOnly,
		RotateOrigins: *rotate,
		ResetCounters: *reset,
	}

	if *sweep > 0 {
		// SIGINT/SIGTERM cancel the sweep gracefully: running points
		// finish, unstarted points are skipped, and the partial aggregate
		// is flushed instead of dying silently.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		seeds := make([]int64, *sweep)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		points := sim.SweepSeedsContext(ctx, cfg, seeds, *parallel)
		summary := sim.Summarize(points)
		for _, p := range points {
			if p.Err != nil && !errors.Is(p.Err, context.Canceled) && !errors.Is(p.Err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "mcsim: seed %d: %v\n", p.Seed, p.Err)
				os.Exit(1)
			}
		}
		fmt.Printf("policy=%s nodes=%d frames/seed=%d ber*=%g eofOnly=%v seeds=%d..%d\n",
			policy.Name(), *nodes, *frames, *berStar, *eofOnly, *seed, *seed+int64(*sweep)-1)
		fmt.Println(summary)
		if summary.Cancelled > 0 {
			fmt.Printf("interrupted: %d of %d points skipped; aggregate covers completed points only\n",
				summary.Cancelled, summary.Points)
			os.Exit(130)
		}
		return
	}

	res, err := sim.MonteCarlo(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		type out struct {
			Policy          string  `json:"policy"`
			Nodes           int     `json:"nodes"`
			Frames          int     `json:"frames"`
			BerStar         float64 `json:"berStar"`
			EOFOnly         bool    `json:"eofOnly"`
			Seed            int64   `json:"seed"`
			Slots           uint64  `json:"slots"`
			BitFlips        uint64  `json:"bitFlips"`
			IMOs            int     `json:"inconsistentOmissions"`
			Duplicates      int     `json:"doubleReceptions"`
			LostEverywhere  int     `json:"lostEverywhere"`
			Incomplete      int     `json:"incomplete"`
			AtomicBroadcast bool    `json:"atomicBroadcast"`
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out{
			Policy: policy.Name(), Nodes: *nodes, Frames: res.FramesSent,
			BerStar: *berStar, EOFOnly: *eofOnly, Seed: *seed,
			Slots: res.Slots, BitFlips: res.BitFlips,
			IMOs: res.IMOs, Duplicates: res.Duplicates,
			LostEverywhere: res.LostEverywhere, Incomplete: res.Incomplete,
			AtomicBroadcast: res.Report.AtomicBroadcast(),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("policy=%s nodes=%d frames=%d ber*=%g eofOnly=%v seed=%d\n",
		policy.Name(), *nodes, res.FramesSent, *berStar, *eofOnly, *seed)
	fmt.Printf("slots simulated:        %d\n", res.Slots)
	fmt.Printf("bit flips injected:     %d\n", res.BitFlips)
	fmt.Printf("inconsistent omissions: %d (%.3e per frame)\n", res.IMOs, res.IMORate())
	fmt.Printf("double receptions:      %d (%.3e per frame)\n", res.Duplicates, res.DuplicateRate())
	fmt.Printf("lost everywhere:        %d\n", res.LostEverywhere)
	fmt.Printf("incomplete frames:      %d\n", res.Incomplete)
	fmt.Println()
	fmt.Println(res.Report.Summary())
}
