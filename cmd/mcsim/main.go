// Command mcsim runs Monte Carlo consistency experiments on the bit-level
// simulator: a stream of frames is broadcast under the spatial random
// error model (ber* = ber/N) and every frame's fate at every receiver is
// classified (delivered, duplicated, omitted).
//
// A run is one sweep job — the flags build the same canonical
// sim.SweepSpec the simulation service accepts, and -spec runs a service
// job-spec file directly, so a spec executes identically here and through
// mcservd. A single run is a sweep of one seed. SIGINT/SIGTERM cancel
// through the job's context — the same path a server drain uses — so
// running points finish, unstarted points are skipped, and the partial
// aggregate is flushed instead of dying silently.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	policyName := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1000, "frames to broadcast")
	berStar := flag.Float64("berstar", 0.01, "per-node per-bit view flip probability (ber* = ber/N)")
	seed := flag.Int64("seed", 1, "random seed")
	eofOnly := flag.Bool("eofonly", true, "restrict errors to the end-of-frame region (importance sampling)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	reset := flag.Bool("reset", true, "reset error counters between frames (keep all nodes error-active)")
	sweep := flag.Int("sweep", 0, "run this many seeds (seed, seed+1, ...) in parallel and aggregate")
	engine := flag.String("engine", string(sim.EngineFast), "bit-slot engine: fast or reference (identical traces; reference is the escape hatch)")
	compareEngines := flag.Bool("compare-engines", false, "run the sweep under both engines and report the first diverging slot (debug)")
	specPath := flag.String("spec", "", "run a canonical job-spec file (kind sweep) instead of the flags")
	parallel := flag.Int("parallel", 4, "concurrent simulations during a sweep")
	jsonOut := flag.Bool("json", false, "emit the machine-readable sweep outcome instead of text")
	eventsPath := flag.String("events", "", "write the protocol event stream as JSONL to this file")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON to this file")
	progress := flag.Bool("progress", false, "live frames/sec and ETA on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcsim: %v\n", err)
		os.Exit(2)
	}
	logger = logger.With("component", "mcsim")

	stopProf, err := obs.StartProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		logger.Error("profiling setup failed", "err", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			logger.Error("profiling teardown failed", "err", err)
		}
		os.Exit(code)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		exit(1)
	}

	// One cancellation path for every mode: SIGINT/SIGTERM cancel the job
	// context exactly as a service drain timeout would.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec, err := resolveSpec(*specPath, sim.SweepSpec{
		Protocol:      *policyName,
		Nodes:         *nodes,
		Frames:        *frames,
		BerStar:       *berStar,
		Seed:          *seed,
		Seeds:         max(*sweep, 1),
		EOFOnly:       *eofOnly,
		ResetCounters: *reset,
		RotateOrigins: *rotate,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := spec.Validate(); err != nil {
		fatalf("%v", err)
	}
	if err := sim.SetDefaultEngine(sim.EngineChoice(*engine)); err != nil {
		fatalf("%v", err)
	}
	if *compareEngines {
		cmp, err := sim.CompareEngines(ctx, spec, *parallel)
		if err != nil {
			fatalf("%v", err)
		}
		if cmp.Identical() {
			fmt.Printf("engines agree: %d seed(s), %d events byte-identical\n", cmp.Seeds, cmp.Events)
			exit(0)
		}
		fmt.Printf("ENGINES DIVERGE: %s\n", cmp.Divergence)
		exit(1)
	}
	seeds := spec.SeedList()

	var metrics *obs.Metrics
	if *metricsPath != "" || *progress {
		metrics = obs.NewMetrics()
		metrics.SetLabel(spec.Protocol)
	}
	//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
	start := time.Now()

	// Per-point telemetry: an in-memory event sink per seed (merged in
	// seed order afterwards, so the JSONL output is byte-identical for
	// any -parallel value) and a fork of the shared metrics registry
	// (so -progress can read live totals while workers run).
	var mems []*obs.Memory
	var tel sim.PointTelemetry
	if *eventsPath != "" || metrics != nil {
		mems = make([]*obs.Memory, len(seeds))
		for i := range mems {
			mems[i] = obs.NewMemory()
		}
		tel = func(i int, _ int64) (obs.Sink, *obs.Metrics) {
			var m *obs.Metrics
			if metrics != nil {
				m = metrics.Fork()
			}
			if *eventsPath == "" {
				return nil, m
			}
			return mems[i], m
		}
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.StartProgress(os.Stderr, uint64(spec.Seeds)*uint64(spec.Frames), metrics.FramesSent, 0, "frames")
	}
	outcome, err := sim.RunSweepSpec(ctx, spec, *parallel, tel)
	if prog != nil {
		prog.Stop()
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *eventsPath != "" {
		if err := writeSweepEvents(*eventsPath, seeds, mems); err != nil {
			fatalf("%v", err)
		}
	}
	if *metricsPath != "" {
		//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
		if err := writeMetrics(*metricsPath, metrics, time.Since(start)); err != nil {
			fatalf("%v", err)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outcome); err != nil {
			fatalf("%v", err)
		}
	case spec.Seeds == 1 && !outcome.Points[0].Cancelled:
		printSingle(spec, outcome.Points[0])
	default:
		fmt.Printf("policy=%s nodes=%d frames/seed=%d ber*=%g eofOnly=%v seeds=%d..%d\n",
			spec.Protocol, spec.Nodes, spec.Frames, spec.BerStar, spec.EOFOnly,
			spec.Seed, spec.Seed+int64(spec.Seeds)-1)
		fmt.Println(outcome.Summary)
	}
	if outcome.Summary.Cancelled > 0 {
		fmt.Printf("interrupted: %d of %d points skipped; aggregate covers completed points only\n",
			outcome.Summary.Cancelled, outcome.Summary.Points)
		exit(130)
	}
	exit(0)
}

// resolveSpec picks the job description: a canonical job-spec file when
// -spec is given (the same codec mcservd and mcctl use), the flag-built
// spec otherwise.
func resolveSpec(path string, fromFlags sim.SweepSpec) (sim.SweepSpec, error) {
	if path == "" {
		fromFlags.Normalize()
		return fromFlags, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return sim.SweepSpec{}, err
	}
	js, err := serve.DecodeSpec(data)
	if err != nil {
		return sim.SweepSpec{}, err
	}
	if js.Kind != serve.KindSweep {
		return sim.SweepSpec{}, fmt.Errorf("mcsim runs %q jobs; %s is a %q job (use the chaos CLI or the service)",
			serve.KindSweep, path, js.Kind)
	}
	return *js.Sweep, nil
}

// printSingle renders a one-seed run in the traditional detailed form.
func printSingle(spec sim.SweepSpec, p sim.PointOutcome) {
	fmt.Printf("policy=%s nodes=%d frames=%d ber*=%g eofOnly=%v seed=%d\n",
		spec.Protocol, spec.Nodes, p.FramesSent, spec.BerStar, spec.EOFOnly, p.Seed)
	fmt.Printf("slots simulated:        %d\n", p.Slots)
	fmt.Printf("bit flips injected:     %d\n", p.BitFlips)
	fmt.Printf("inconsistent omissions: %d (%.3e per frame)\n", p.IMOs, rate(p.IMOs, p.FramesSent))
	fmt.Printf("double receptions:      %d (%.3e per frame)\n", p.Duplicates, rate(p.Duplicates, p.FramesSent))
	fmt.Printf("lost everywhere:        %d\n", p.LostEverywhere)
	fmt.Printf("incomplete frames:      %d\n", p.Incomplete)
	if p.AtomicBroadcast {
		fmt.Println("atomic broadcast:       held for every frame")
	} else {
		fmt.Println("atomic broadcast:       VIOLATED")
	}
}

func rate(n, frames int) float64 {
	if frames == 0 {
		return 0
	}
	return float64(n) / float64(frames)
}

// writeMetrics writes a registry snapshot as indented JSON.
func writeMetrics(path string, m *obs.Metrics, elapsed time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Snapshot(elapsed)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSweepEvents serialises per-point event logs to one JSONL file in
// seed order, each point's events canonically sorted and tagged with its
// seed, so the merged log is byte-identical for any worker count.
func writeSweepEvents(path string, seeds []int64, mems []*obs.Memory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, mem := range mems {
		if mem == nil {
			continue
		}
		if err := obs.WriteJSONL(f, seeds[i], mem.Events()); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
