// Command drift explores the CAN bit-timing layer: the oscillator
// tolerance bought by the synchronisation segments, and the sampling
// integrity of realistic frame traffic at fractions and multiples of that
// tolerance. It substantiates the slot-synchronous abstraction of the main
// simulator (valid while every oscillator stays inside the tolerance) and
// the paper's clock-failure fault class (what happens beyond it).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bitstream"
	"repro/internal/bittiming"
	"repro/internal/frame"
)

func main() {
	frames := flag.Int("frames", 20, "frames in the sampled stream")
	seed := flag.Int64("seed", 1, "random seed for the frame contents")
	flag.Parse()

	configs := []struct {
		name string
		seg  bittiming.Segments
	}{
		{"classic 16tq (SJW 2)", bittiming.Classic()},
		{"16tq wide SJW", bittiming.Segments{Prop: 7, PS1: 4, PS2: 4, SJW: 4}},
		{"8tq minimal", bittiming.Segments{Prop: 3, PS1: 2, PS2: 2, SJW: 1}},
		{"25tq slow bus", bittiming.Segments{Prop: 12, PS1: 8, PS2: 4, SJW: 4}},
	}

	r := rand.New(rand.NewSource(*seed))
	var stream bitstream.Sequence
	for i := 0; i < *frames; i++ {
		f := &frame.Frame{ID: uint32(r.Intn(frame.MaxStandardID + 1)), Data: make([]byte, 8)}
		if i%2 == 0 {
			r.Read(f.Data) // random payload
		} // else all-zero: maximum stuffing, longest edge-free runs
		enc, err := frame.Encode(f, frame.StandardEOFBits)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drift: %v\n", err)
			os.Exit(1)
		}
		stream = append(stream, enc.Bits...)
		stream = append(stream, bitstream.Repeat(bitstream.Recessive, 3)...)
	}

	fmt.Printf("sampling %d bits of frame traffic through a drifting receiver clock\n\n", len(stream))
	fmt.Printf("%-22s  %-6s  %-12s  %s\n", "configuration", "NBT", "tolerance", "mismatches at 0.5x / 0.9x / 2x / 4x tolerance")
	for _, cfg := range configs {
		if err := cfg.seg.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "drift: %s: %v\n", cfg.name, err)
			os.Exit(1)
		}
		tol := cfg.seg.MaxTolerance()
		var cells []string
		for _, frac := range []float64{0.5, 0.9, 2, 4} {
			df := tol * frac
			sp, err := bittiming.NewSampler(cfg.seg, df, -df)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drift: %v\n", err)
				os.Exit(1)
			}
			cells = append(cells, fmt.Sprintf("%d", sp.MismatchCount(stream)))
		}
		fmt.Printf("%-22s  %-6d  %-12s  %s\n",
			cfg.name, cfg.seg.NBT(), fmt.Sprintf("±%.3f%%", 100*tol),
			cells[0]+" / "+cells[1]+" / "+cells[2]+" / "+cells[3])
	}
	fmt.Println("\nwithin tolerance the resynchronisation absorbs all drift (0 mismatches);")
	fmt.Println("beyond it sampling breaks — the paper's clock-failure fault class, which the")
	fmt.Println("fault confinement then converts into stuff/CRC/form errors at the drifted node")
}
