// Command overhead measures the per-frame bus occupancy of MajorCAN_m
// against standard CAN (the paper's Sections 5-6 overhead discussion) and
// compares the controller-level cost with the frame counts of the FTCS'98
// higher-level protocols.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	msFlag := flag.String("m", "3,4,5,6,7,8", "comma-separated MajorCAN m values")
	flag.Parse()

	var ms []int
	for _, s := range strings.Split(*msFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "overhead: invalid m %q: %v\n", s, err)
			os.Exit(1)
		}
		ms = append(ms, v)
	}

	rows, canBest, canWorst, err := sim.MeasureOverhead(
		func(m int) node.EOFPolicy { return core.MustMajorCAN(m) },
		core.NewStandard(), ms)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("Per-frame bus occupancy (8-byte payload), measured on the bit-level simulator")
	fmt.Printf("standard CAN: best case %d slots, worst case (error at last EOF bit) %d slots\n\n", canBest, canWorst)
	fmt.Printf("%-4s  %-10s  %-10s  %-22s  %-22s\n", "m", "best", "worst", "best overhead vs CAN", "worst vs CAN best")
	fmt.Printf("%-4s  %-10s  %-10s  %-22s  %-22s\n", "", "(slots)", "(slots)", "measured (paper 2m-7)", "measured (paper 4m-9)")
	for _, r := range rows {
		fmt.Printf("%-4d  %-10d  %-10d  %4d (%d)%13s  %4d (%d)\n",
			r.M, r.BestSlots, r.WorstSlots,
			r.BestOverhead, r.PaperBest, "",
			r.WorstSlots-canBest, r.PaperWorst)
	}

	fmt.Println("\nHigher-level protocol cost per application message (frames on the bus, error-free case):")
	fmt.Println("  raw CAN / MinorCAN / MajorCAN_m: 1 frame (the overhead above is bits, not frames)")
	fmt.Println("  EDCAN:  1 + (N-1) replica frames (every receiver retransmits once)")
	fmt.Println("  RELCAN: 2 frames (data + CONFIRM)")
	fmt.Println("  TOTCAN: 2 frames (data + ACCEPT)")
	fmt.Println("\nThe paper's conclusion: even MajorCAN's worst-case cost of a few bits is negligible")
	fmt.Println("compared with any protocol that needs at least one extra frame per message.")
}
