// Command table1 regenerates Table 1 of the MajorCAN paper: the per-hour
// rates of the new inconsistency scenario (expression 4) and of the old
// Fig. 1c scenario (expression 5) under the ber* spatial error model, for
// the paper's reference network (32 nodes, 1 Mbps, 90% load, 110-bit
// frames).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analytic"
)

func main() {
	bers := flag.String("ber", "1e-4,1e-5,1e-6", "comma-separated bit error rates")
	nodes := flag.Int("nodes", 32, "number of nodes N")
	tau := flag.Int("tau", 110, "frame length in bits")
	load := flag.Float64("load", 0.9, "bus load")
	rate := flag.Float64("bitrate", 1e6, "bus speed in bit/s")
	flag.Parse()

	var rows []analytic.Table1Row
	for _, s := range strings.Split(*bers, ",") {
		ber, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table1: invalid ber %q: %v\n", s, err)
			os.Exit(1)
		}
		p := analytic.Reference(ber)
		p.Nodes, p.FrameBits, p.Load, p.BitRate = *nodes, *tau, *load, *rate
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "table1: %v\n", err)
			os.Exit(1)
		}
		row := analytic.Table1Row{
			Ber:        ber,
			NewPerHour: p.NewScenarioPerHour(),
			OldPerHour: p.OldScenarioPerHour(),
		}
		// Attach the published reference values when running the paper's
		// exact configuration.
		if *nodes == 32 && *tau == 110 && *load == 0.9 && *rate == 1e6 {
			for _, pr := range analytic.PaperTable1 {
				if pr.Ber == ber {
					row.RufinoPerHour = pr.RufinoPerHour
				}
			}
		}
		rows = append(rows, row)
	}

	fmt.Printf("Table 1 — probabilities of the inconsistency scenarios (N=%d, tau=%d bits, %.0f%% load, %.0f bit/s)\n\n",
		*nodes, *tau, 100**load, *rate)
	fmt.Print(analytic.RenderTable1(rows))
	fmt.Printf("\nsafety reference: %.0e incidents/hour (aerospace)\n", analytic.SafetyReference)
	for _, r := range rows {
		if r.NewPerHour > analytic.SafetyReference {
			fmt.Printf("  ber=%.0e: IMOnew/hour exceeds the safety reference by %.0fx\n",
				r.Ber, r.NewPerHour/analytic.SafetyReference)
		}
	}
}
