// Command mcservd is the simulation service daemon: it accepts Monte
// Carlo sweeps, chaos campaigns, exhaustive verification runs and
// scenario replays as canonical JSON job specs over HTTP, schedules them
// across sharded worker queues, and memoises results in a
// content-addressed cache (see internal/serve).
//
//	mcservd -addr 127.0.0.1:8329 -shards 4 -spool /var/tmp/mcservd
//
// With a spool configured the daemon is crash-safe: a write-ahead job
// journal makes every 202 durable, long-running jobs checkpoint their
// progress, and a restart replays accepted-but-unfinished jobs from
// where they stopped (disable with -journal none / -checkpoints none).
//
// The same binary also runs as a fleet coordinator, fronting the
// identical /v1 jobs API while splitting each logical job into
// content-addressed shards dispatched to worker daemons and merging
// the results byte-identically to a single-node run (internal/fleet):
//
//	mcservd -worker -addr 127.0.0.1:9001 &
//	mcservd -worker -addr 127.0.0.1:9002 &
//	mcservd -coordinator -workers http://127.0.0.1:9001,http://127.0.0.1:9002
//
// -worker is the default role; the flag exists so fleet scripts can be
// explicit about which process is which.
//
// SIGTERM or SIGINT drains gracefully: in-flight jobs finish, new
// submissions are rejected with 503, and the process exits once every
// shard is idle (bounded by -drain-timeout).
package main

import (
	"os"

	"repro/internal/fleet"
	"repro/internal/serve"
)

// main delegates to the role's DaemonMain so the crash-recovery harness
// can run the identical daemon body inside a re-executed test binary.
// The role flags are peeled off before the role's own flag set parses
// the rest.
func main() {
	args := os.Args[1:]
	coordinator := false
	rest := make([]string, 0, len(args))
	for _, a := range args {
		switch a {
		case "-coordinator", "--coordinator":
			coordinator = true
		case "-worker", "--worker":
			coordinator = false
		default:
			rest = append(rest, a)
		}
	}
	if coordinator {
		os.Exit(fleet.DaemonMain(rest))
	}
	os.Exit(serve.DaemonMain(rest))
}
