// Command mcservd is the simulation service daemon: it accepts Monte
// Carlo sweeps, chaos campaigns, exhaustive verification runs and
// scenario replays as canonical JSON job specs over HTTP, schedules them
// across sharded worker queues, and memoises results in a
// content-addressed cache (see internal/serve).
//
//	mcservd -addr 127.0.0.1:8329 -shards 4 -spool /var/tmp/mcservd
//
// With a spool configured the daemon is crash-safe: a write-ahead job
// journal makes every 202 durable, long-running jobs checkpoint their
// progress, and a restart replays accepted-but-unfinished jobs from
// where they stopped (disable with -journal none / -checkpoints none).
//
// SIGTERM or SIGINT drains gracefully: in-flight jobs finish, new
// submissions are rejected with 503, and the process exits once every
// shard is idle (bounded by -drain-timeout).
package main

import (
	"os"

	"repro/internal/serve"
)

// main delegates to serve.DaemonMain so the crash-recovery harness can
// run the identical daemon body inside a re-executed test binary.
func main() {
	os.Exit(serve.DaemonMain(os.Args[1:]))
}
