// Command mcservd is the simulation service daemon: it accepts Monte
// Carlo sweeps, chaos campaigns, exhaustive verification runs and
// scenario replays as canonical JSON job specs over HTTP, schedules them
// across sharded worker queues, and memoises results in a
// content-addressed cache (see internal/serve).
//
//	mcservd -addr 127.0.0.1:8329 -shards 4 -spool /var/tmp/mcservd
//
// SIGTERM or SIGINT drains gracefully: in-flight jobs finish, new
// submissions are rejected with 503, and the process exits once every
// shard is idle (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8329", "listen address")
		shards       = flag.Int("shards", 4, "worker shards")
		queue        = flag.Int("queue", 64, "per-shard queue depth")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-attempt job timeout")
		retries      = flag.Int("retries", 1, "max retries for transient job failures")
		parallelism  = flag.Int("parallelism", 1, "intra-job parallelism (sweep points, verify patterns)")
		cacheEntries = flag.Int("cache", 256, "in-memory result cache entries")
		spool        = flag.String("spool", "", "result spool directory (empty = memory only)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Minute, "graceful drain budget on SIGTERM")
	)
	flag.Parse()
	log.SetPrefix("mcservd: ")
	log.SetFlags(0)

	sched, err := serve.NewScheduler(serve.Config{
		Shards:       *shards,
		QueueDepth:   *queue,
		JobTimeout:   *jobTimeout,
		MaxRetries:   *retries,
		Parallelism:  *parallelism,
		CacheEntries: *cacheEntries,
		SpoolDir:     *spool,
	})
	if err != nil {
		log.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	srv := &http.Server{Handler: serve.NewServer(sched)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on %s (shards=%d queue=%d cache=%d spool=%q)",
		ln.Addr(), *shards, *queue, *cacheEntries, *spool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain: reject new jobs (503), finish what is queued and running,
	// then close the listener. The HTTP server stays up through the
	// drain so clients see 503s, not connection resets.
	log.Printf("draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := sched.Drain(dctx)
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	st := sched.Stats()
	log.Printf("drained: executed=%d coalesced=%d cache_hits=%d failed=%d",
		st.Jobs.Executed, st.Jobs.Coalesced, st.Cache.Hits, st.Jobs.Failed)
	if drainErr != nil {
		log.Printf("drain incomplete: %v", drainErr)
		return 1
	}
	return 0
}
