// Command chaos runs declarative fault-injection campaigns on the
// bit-level simulator, shrinks counterexamples to minimal disturbance
// scripts, and replays recorded artifacts bit-for-bit.
//
// Modes:
//
//	chaos -trials 500 -policy can -nodes 5 -out findings/   # campaign
//	chaos -script script.json                               # run one script
//	chaos -replay findings/finding_0.json                   # verify artifact
//
// Replay exits 0 exactly when the artifact reproduces its recorded
// verdict (a recorded violation that replays identically is a success);
// any digest or verdict mismatch exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/abcheck"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// stopProf finalises profiling; exit routes every termination through it.
var stopProf = func() error { return nil }

func exit(code int) {
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
	}
	os.Exit(code)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
	exit(1)
}

// telemetry bundles the CLI's observability outputs.
type telemetry struct {
	eventsPath  string
	metricsPath string
	events      *obs.Memory
	metrics     *obs.Metrics
	start       time.Time
}

func newTelemetry(eventsPath, metricsPath, label string) *telemetry {
	//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
	t := &telemetry{eventsPath: eventsPath, metricsPath: metricsPath, start: time.Now()}
	if eventsPath != "" {
		t.events = obs.NewMemory()
	}
	if metricsPath != "" {
		t.metrics = obs.NewMetrics()
		t.metrics.SetLabel(label)
	}
	return t
}

func (t *telemetry) chaosTelemetry() chaos.Telemetry {
	var sink obs.Sink
	if t.events != nil {
		sink = t.events
	}
	return chaos.Telemetry{Events: sink, Metrics: t.metrics}
}

// flush writes the collected event log (canonically sorted, run-tagged
// with the given id) and the metrics snapshot.
func (t *telemetry) flush(run int64) {
	if t.events != nil {
		f, err := os.Create(t.eventsPath)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.WriteJSONL(f, run, t.events.Events()); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
	if t.metrics != nil {
		f, err := os.Create(t.metricsPath)
		if err != nil {
			fail("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
		if err := enc.Encode(t.metrics.Snapshot(time.Since(t.start))); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
}

// parseProbes maps a comma-separated probe list onto the campaign probe
// set. "all" is the default set; AB properties may be selected
// individually to narrow the search (e.g. -probes agreement to hunt for
// the paper's inconsistency scenarios only).
func parseProbes(csv string) ([]chaos.Probe, error) {
	if csv == "" || csv == "all" {
		return nil, nil
	}
	var probes []chaos.Probe
	var props []abcheck.Property
	for _, s := range strings.Split(csv, ",") {
		switch strings.TrimSpace(s) {
		case "ab":
			probes = append(probes, chaos.AB())
		case "validity":
			props = append(props, abcheck.Validity)
		case "agreement":
			props = append(props, abcheck.Agreement)
		case "at-most-once":
			props = append(props, abcheck.AtMostOnce)
		case "non-triviality":
			props = append(props, abcheck.NonTriviality)
		case "total-order":
			props = append(props, abcheck.TotalOrder)
		case "liveness":
			probes = append(probes, chaos.Liveness())
		case "confinement":
			probes = append(probes, chaos.Confinement())
		default:
			return nil, fmt.Errorf("unknown probe %q (known: ab, validity, agreement, at-most-once, non-triviality, total-order, liveness, confinement)", s)
		}
	}
	if len(props) > 0 {
		probes = append(probes, chaos.AB(props...))
	}
	return probes, nil
}

func parseKinds(csv string) ([]chaos.FaultKind, error) {
	if csv == "" || csv == "all" {
		return nil, nil
	}
	known := make(map[chaos.FaultKind]bool)
	for _, k := range chaos.Kinds() {
		known[k] = true
	}
	var out []chaos.FaultKind
	for _, s := range strings.Split(csv, ",") {
		k := chaos.FaultKind(strings.TrimSpace(s))
		if !known[k] {
			return nil, fmt.Errorf("unknown fault kind %q (known: %v)", k, chaos.Kinds())
		}
		out = append(out, k)
	}
	return out, nil
}

func main() {
	policy := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1, "frames broadcast per trial")
	trials := flag.Int("trials", 200, "random scripts to execute")
	maxFaults := flag.Int("maxfaults", 4, "maximum faults per trial")
	seed := flag.Int64("seed", 1, "campaign seed")
	kindsCSV := flag.String("kinds", "all", "comma-separated fault kinds (view-flip, stuck-dominant, mute, crash, bus-off, clock-glitch)")
	probesCSV := flag.String("probes", "all", "comma-separated probes (ab, validity, agreement, at-most-once, non-triviality, total-order, liveness, confinement)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	autoRecover := flag.Bool("autorecover", false, "enable bus-off recovery on every node")
	warningOff := flag.Bool("warnoff", false, "enable the switch-off-at-warning-limit policy")
	stopFirst := flag.Bool("stopfirst", false, "stop the campaign at the first finding")
	outDir := flag.String("out", "", "directory to write finding artifacts into")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	scriptPath := flag.String("script", "", "run one script file and print its verdict")
	replayPath := flag.String("replay", "", "replay an artifact and verify it reproduces")
	eventsPath := flag.String("events", "", "write the protocol event stream as JSONL (script and replay modes)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON")
	progress := flag.Bool("progress", false, "live trial progress on stderr (campaign mode)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	sp, err := obs.StartProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fail("%v", err)
	}
	stopProf = sp

	switch {
	case *replayPath != "":
		replay(*replayPath, *jsonOut, newTelemetry(*eventsPath, *metricsPath, *policy))
	case *scriptPath != "":
		runScript(*scriptPath, *jsonOut, newTelemetry(*eventsPath, *metricsPath, *policy))
	default:
		if *eventsPath != "" {
			fail("-events applies to -script and -replay modes only (a campaign's event stream is unbounded)")
		}
		kinds, err := parseKinds(*kindsCSV)
		if err != nil {
			fail("%v", err)
		}
		probes, err := parseProbes(*probesCSV)
		if err != nil {
			fail("%v", err)
		}
		campaign(chaos.Campaign{
			Name: "cli",
			Base: chaos.Script{
				Version:          chaos.ScriptVersion,
				Protocol:         *policy,
				Nodes:            *nodes,
				Frames:           *frames,
				RotateOrigins:    *rotate,
				AutoRecover:      *autoRecover,
				WarningSwitchOff: *warningOff,
			},
			Trials:      *trials,
			MaxFaults:   *maxFaults,
			FaultKinds:  kinds,
			Seed:        *seed,
			Probes:      probes,
			StopAtFirst: *stopFirst,
		}, *outDir, *jsonOut, *progress, newTelemetry("", *metricsPath, *policy), *trials)
	}
}

func replay(path string, jsonOut bool, t *telemetry) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	a, err := chaos.DecodeArtifact(data)
	if err != nil {
		fail("%v", err)
	}
	rr, err := chaos.ReplayObserved(a, t.chaosTelemetry())
	if err != nil {
		fail("%v", err)
	}
	t.flush(int64(a.Trial))
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			DigestMatch  bool          `json:"digestMatch"`
			VerdictMatch bool          `json:"verdictMatch"`
			Verdict      chaos.Verdict `json:"verdict"`
		}{rr.DigestMatch, rr.VerdictMatch, rr.Verdict}); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("replayed %s: digest %s over %d slots\n", path, rr.Verdict.Digest, rr.Verdict.Slots)
		for _, v := range rr.Verdict.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("digest match: %v, verdict match: %v\n", rr.DigestMatch, rr.VerdictMatch)
	}
	if !rr.Matches() {
		exit(1)
	}
	exit(0)
}

func runScript(path string, jsonOut bool, t *telemetry) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var s chaos.Script
	if err := json.Unmarshal(data, &s); err != nil {
		fail("bad script: %v", err)
	}
	if s.Version == 0 {
		s.Version = chaos.ScriptVersion
	}
	r, err := chaos.RunObserved(s, t.chaosTelemetry())
	if err != nil {
		fail("%v", err)
	}
	t.flush(0)
	verdict := chaos.VerdictOf(r, chaos.DefaultProbes())
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdict); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("script %s: %d faults, digest %s over %d slots\n",
			path, len(s.Faults), verdict.Digest, verdict.Slots)
		fmt.Printf("IMOs=%d duplicates=%d orderInversions=%d quiet=%v\n",
			verdict.IMOs, verdict.Duplicates, verdict.OrderInversions, verdict.Quiet)
		if len(verdict.Violations) == 0 {
			fmt.Println("no violations")
		}
		for _, v := range verdict.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if len(verdict.Violations) > 0 {
		exit(2)
	}
	exit(0)
}

func campaign(c chaos.Campaign, outDir string, jsonOut bool, progress bool, t *telemetry, trials int) {
	c.Metrics = t.metrics
	var prog *obs.Progress
	if progress {
		var done atomic.Uint64
		c.OnTrial = func(n int) { done.Store(uint64(n)) }
		prog = obs.StartProgress(os.Stderr, uint64(trials), done.Load, 0, "trials")
	}
	res, err := c.Run()
	if prog != nil {
		prog.Stop()
	}
	if err != nil {
		fail("%v", err)
	}
	t.flush(0)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fail("%v", err)
		}
		for i, f := range res.Findings {
			data, err := f.Artifact(c.Name).Encode()
			if err != nil {
				fail("%v", err)
			}
			path := filepath.Join(outDir, fmt.Sprintf("finding_%03d.json", i))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fail("%v", err)
			}
		}
	}
	if jsonOut {
		type finding struct {
			Trial          int           `json:"trial"`
			OriginalFaults int           `json:"originalFaults"`
			ShrunkFaults   []chaos.Fault `json:"shrunkFaults"`
			Verdict        chaos.Verdict `json:"verdict"`
		}
		out := struct {
			Trials     int       `json:"trials"`
			Executions int       `json:"executions"`
			Findings   []finding `json:"findings"`
		}{Trials: res.Trials, Executions: res.Executions, Findings: []finding{}}
		for _, f := range res.Findings {
			out.Findings = append(out.Findings, finding{
				Trial:          f.Trial,
				OriginalFaults: len(f.Original.Faults),
				ShrunkFaults:   f.Shrunk.Faults,
				Verdict:        f.Verdict,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail("%v", err)
		}
		exit(0)
	}
	fmt.Printf("campaign: %d trials, %d simulator executions, %d findings\n",
		res.Trials, res.Executions, len(res.Findings))
	for i, f := range res.Findings {
		fmt.Printf("finding %d (trial %d): %d faults shrunk to %d\n",
			i, f.Trial, len(f.Original.Faults), len(f.Shrunk.Faults))
		for _, fault := range f.Shrunk.Faults {
			fmt.Printf("  %s\n", fault)
		}
		for _, v := range f.Violations {
			fmt.Printf("  -> %s\n", v)
		}
	}
	exit(0)
}
