// Command chaos runs declarative fault-injection campaigns on the
// bit-level simulator, shrinks counterexamples to minimal disturbance
// scripts, and replays recorded artifacts bit-for-bit.
//
// Modes:
//
//	chaos -trials 500 -policy can -nodes 5 -out findings/   # campaign
//	chaos -spec job.json                                    # canonical job spec
//	chaos -script script.json                               # run one script
//	chaos -replay findings/finding_0.json                   # verify artifact
//
// A campaign is one job — the flags build the same canonical
// chaos.CampaignSpec the simulation service accepts, and -spec runs a
// service job-spec file (kind campaign or script) directly, so a spec
// executes identically here and through mcservd. SIGINT/SIGTERM stop a
// campaign between trials through the job's context — the same path a
// server drain uses.
//
// Replay exits 0 exactly when the artifact reproduces its recorded
// verdict (a recorded violation that replays identically is a success);
// any digest or verdict mismatch exits 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// stopProf finalises profiling; exit routes every termination through it.
var stopProf = func() error { return nil }

// logger carries CLI diagnostics; main replaces it per -log-format
// before any mode runs.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "chaos")

func exit(code int) {
	if err := stopProf(); err != nil {
		logger.Error("profiling teardown failed", "err", err)
	}
	os.Exit(code)
}

func fail(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	exit(1)
}

// telemetry bundles the CLI's observability outputs.
type telemetry struct {
	eventsPath  string
	metricsPath string
	events      *obs.Memory
	metrics     *obs.Metrics
	start       time.Time
}

func newTelemetry(eventsPath, metricsPath, label string) *telemetry {
	//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
	t := &telemetry{eventsPath: eventsPath, metricsPath: metricsPath, start: time.Now()}
	if eventsPath != "" {
		t.events = obs.NewMemory()
	}
	if metricsPath != "" {
		t.metrics = obs.NewMetrics()
		t.metrics.SetLabel(label)
	}
	return t
}

func (t *telemetry) chaosTelemetry() chaos.Telemetry {
	var sink obs.Sink
	if t.events != nil {
		sink = t.events
	}
	return chaos.Telemetry{Events: sink, Metrics: t.metrics}
}

// flush writes the collected event log (canonically sorted, run-tagged
// with the given id) and the metrics snapshot.
func (t *telemetry) flush(run int64) {
	if t.events != nil {
		f, err := os.Create(t.eventsPath)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.WriteJSONL(f, run, t.events.Events()); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
	if t.metrics != nil {
		f, err := os.Create(t.metricsPath)
		if err != nil {
			fail("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		//lint:allow determinism -- CLI wall-clock for the metrics snapshot header; not simulation state
		if err := enc.Encode(t.metrics.Snapshot(time.Since(t.start))); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
	}
}

// csvList splits a comma-separated flag into trimmed names; "all" (the
// flag default) and the empty string mean no restriction. Validation
// lives in the chaos package (ParseProbes, ParseKinds) — the single
// codec shared with the job-spec layer.
func csvList(csv string) []string {
	if csv == "" || csv == "all" {
		return nil
	}
	parts := strings.Split(csv, ",")
	out := make([]string, 0, len(parts))
	for _, s := range parts {
		out = append(out, strings.TrimSpace(s))
	}
	return out
}

func main() {
	policy := flag.String("policy", "can", "protocol: can, minorcan or majorcan_<m>")
	nodes := flag.Int("nodes", 5, "number of stations")
	frames := flag.Int("frames", 1, "frames broadcast per trial")
	trials := flag.Int("trials", 200, "random scripts to execute")
	maxFaults := flag.Int("maxfaults", 4, "maximum faults per trial")
	seed := flag.Int64("seed", 1, "campaign seed")
	kindsCSV := flag.String("kinds", "all", "comma-separated fault kinds (view-flip, stuck-dominant, mute, crash, bus-off, clock-glitch)")
	probesCSV := flag.String("probes", "all", "comma-separated probes (ab, validity, agreement, at-most-once, non-triviality, total-order, liveness, confinement)")
	rotate := flag.Bool("rotate", false, "rotate the transmitting station")
	autoRecover := flag.Bool("autorecover", false, "enable bus-off recovery on every node")
	warningOff := flag.Bool("warnoff", false, "enable the switch-off-at-warning-limit policy")
	stopFirst := flag.Bool("stopfirst", false, "stop the campaign at the first finding")
	engine := flag.String("engine", string(sim.EngineFast), "bit-slot engine: fast or reference (identical traces)")
	outDir := flag.String("out", "", "directory to write finding artifacts into")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	specPath := flag.String("spec", "", "run a canonical job-spec file (kind campaign or script) instead of the flags")
	scriptPath := flag.String("script", "", "run one script file and print its verdict")
	replayPath := flag.String("replay", "", "replay an artifact and verify it reproduces")
	eventsPath := flag.String("events", "", "write the protocol event stream as JSONL (script and replay modes)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON")
	progress := flag.Bool("progress", false, "live trial progress on stderr (campaign mode)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text or json")
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	logger = lg.With("component", "chaos")

	sp, err := obs.StartProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fail("%v", err)
	}
	stopProf = sp

	if err := sim.SetDefaultEngine(sim.EngineChoice(*engine)); err != nil {
		fail("%v", err)
	}

	// One cancellation path for every long-running mode: SIGINT/SIGTERM
	// stop a campaign between trials, exactly as a service drain would.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *replayPath != "":
		replay(*replayPath, *jsonOut, newTelemetry(*eventsPath, *metricsPath, *policy))
	case *scriptPath != "":
		runScriptFile(*scriptPath, *jsonOut, newTelemetry(*eventsPath, *metricsPath, *policy))
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail("%v", err)
		}
		js, err := serve.DecodeSpec(data)
		if err != nil {
			fail("%v", err)
		}
		switch js.Kind {
		case serve.KindCampaign:
			campaign(ctx, *js.Campaign, *outDir, *jsonOut, *progress,
				newTelemetry("", *metricsPath, js.Campaign.Protocol))
		case serve.KindScript:
			runScript(*js.Script, *jsonOut, newTelemetry(*eventsPath, *metricsPath, js.Script.Protocol))
		default:
			fail("chaos runs campaign and script jobs; %s is a %q job (use mcsim or the service)", *specPath, js.Kind)
		}
	default:
		if *eventsPath != "" {
			fail("-events applies to -script and -replay modes only (a campaign's event stream is unbounded)")
		}
		campaign(ctx, chaos.CampaignSpec{
			Protocol:         *policy,
			Nodes:            *nodes,
			Frames:           *frames,
			Trials:           *trials,
			MaxFaults:        *maxFaults,
			Seed:             *seed,
			Kinds:            toKinds(csvList(*kindsCSV)),
			Probes:           csvList(*probesCSV),
			StopAtFirst:      *stopFirst,
			RotateOrigins:    *rotate,
			AutoRecover:      *autoRecover,
			WarningSwitchOff: *warningOff,
		}, *outDir, *jsonOut, *progress, newTelemetry("", *metricsPath, *policy))
	}
}

func toKinds(names []string) []chaos.FaultKind {
	out := make([]chaos.FaultKind, 0, len(names))
	for _, n := range names {
		out = append(out, chaos.FaultKind(n))
	}
	return out
}

func replay(path string, jsonOut bool, t *telemetry) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	a, err := chaos.DecodeArtifact(data)
	if err != nil {
		fail("%v", err)
	}
	rr, err := chaos.ReplayObserved(a, t.chaosTelemetry())
	if err != nil {
		fail("%v", err)
	}
	t.flush(int64(a.Trial))
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			DigestMatch  bool          `json:"digestMatch"`
			VerdictMatch bool          `json:"verdictMatch"`
			Verdict      chaos.Verdict `json:"verdict"`
		}{rr.DigestMatch, rr.VerdictMatch, rr.Verdict}); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("replayed %s: digest %s over %d slots\n", path, rr.Verdict.Digest, rr.Verdict.Slots)
		for _, v := range rr.Verdict.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("digest match: %v, verdict match: %v\n", rr.DigestMatch, rr.VerdictMatch)
	}
	if !rr.Matches() {
		exit(1)
	}
	exit(0)
}

func runScriptFile(path string, jsonOut bool, t *telemetry) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var s chaos.Script
	if err := json.Unmarshal(data, &s); err != nil {
		fail("bad script: %v", err)
	}
	if s.Version == 0 {
		s.Version = chaos.ScriptVersion
	}
	runScript(s, jsonOut, t)
}

func runScript(s chaos.Script, jsonOut bool, t *telemetry) {
	r, err := chaos.RunObserved(s, t.chaosTelemetry())
	if err != nil {
		fail("%v", err)
	}
	t.flush(0)
	verdict := chaos.VerdictOf(r, chaos.DefaultProbes())
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdict); err != nil {
			fail("%v", err)
		}
	} else {
		fmt.Printf("script: %d faults, digest %s over %d slots\n",
			len(s.Faults), verdict.Digest, verdict.Slots)
		fmt.Printf("IMOs=%d duplicates=%d orderInversions=%d quiet=%v\n",
			verdict.IMOs, verdict.Duplicates, verdict.OrderInversions, verdict.Quiet)
		if len(verdict.Violations) == 0 {
			fmt.Println("no violations")
		}
		for _, v := range verdict.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if len(verdict.Violations) > 0 {
		exit(2)
	}
	exit(0)
}

func campaign(ctx context.Context, spec chaos.CampaignSpec, outDir string, jsonOut bool, progress bool, t *telemetry) {
	spec.Normalize()
	var prog *obs.Progress
	var onTrial func(int)
	if progress {
		var done atomic.Uint64
		onTrial = func(n int) { done.Store(uint64(n)) }
		total := spec.Trials
		if total == 0 {
			total = 100
		}
		prog = obs.StartProgress(os.Stderr, uint64(total), done.Load, 0, "trials")
	}
	res, err := chaos.RunCampaignSpec(ctx, spec, chaos.Telemetry{Metrics: t.metrics}, onTrial)
	if prog != nil {
		prog.Stop()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "chaos: campaign interrupted; partial results discarded")
			exit(130)
		}
		fail("%v", err)
	}
	t.flush(0)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fail("%v", err)
		}
		for i, a := range res.Findings {
			data, err := a.Encode()
			if err != nil {
				fail("%v", err)
			}
			path := filepath.Join(outDir, fmt.Sprintf("finding_%03d.json", i))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fail("%v", err)
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail("%v", err)
		}
		exit(0)
	}
	fmt.Printf("campaign: %d trials, %d simulator executions, %d findings\n",
		res.Trials, res.Executions, len(res.Findings))
	for i, a := range res.Findings {
		fmt.Printf("finding %d (trial %d): %d faults shrunk to %d\n",
			i, a.Trial, a.OriginalFaults, len(a.Script.Faults))
		for _, fault := range a.Script.Faults {
			fmt.Printf("  %s\n", fault)
		}
		for _, v := range a.Verdict.Violations {
			fmt.Printf("  -> %s\n", v)
		}
	}
	exit(0)
}
