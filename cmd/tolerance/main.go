// Command tolerance quantifies the paper's remark that "if ber is larger
// then larger values of m should be considered": for each bit error rate
// it reports the smallest MajorCAN_m tolerance whose residual rate of
// beyond-tolerance frames (more than m view-bit errors in the decision
// region) stays below a target, plus the residual rate of the paper's
// m = 5 proposal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analytic"
)

func main() {
	bers := flag.String("ber", "1e-6,1e-5,1e-4,1e-3,1e-2", "comma-separated bit error rates")
	target := flag.Float64("target", analytic.SafetyReference, "target rate in incidents/hour")
	flag.Parse()

	var list []float64
	for _, s := range strings.Split(*bers, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tolerance: invalid ber %q: %v\n", s, err)
			os.Exit(1)
		}
		list = append(list, v)
	}
	rows, err := analytic.ToleranceTable(list, *target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tolerance: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("MajorCAN m selection for a %g/hour target (N=32, 1 Mbps, 90%% load, 110-bit frames)\n\n", *target)
	fmt.Printf("%-8s  %-10s  %-20s  %-24s\n", "ber", "required m", "residual at that m", "residual of paper's m=5")
	for _, r := range rows {
		fmt.Printf("%-8.0e  %-10d  %-20.3e  %-24.3e\n", r.Ber, r.RequiredM, r.ResidualPerHour, r.MajorCAN5PerHour)
	}
	fmt.Println("\nresidual = expected frames/hour suffering more errors in the end-of-frame")
	fmt.Println("decision region than the protocol tolerates (spatial model, ber* = ber/N)")
}
