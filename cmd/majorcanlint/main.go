// Command majorcanlint is the multichecker for the repository's custom
// analyzers (internal/lint): determinism, hotpath, eventcontract,
// atomicmix, and the concurrency-safety suite — lockorder, ctxflow,
// goleak, errsink. It machine-checks the conventions the simulator's
// reproducibility guarantees depend on — digest-verified chaos replays,
// byte-identical JSONL event streams, allocation-free event emission —
// and the concurrency invariants the service layer's crash-safety
// certification rests on (DESIGN.md §13).
//
// Usage:
//
//	majorcanlint [-json] [-list] [packages...]
//
// Packages default to ./... resolved from the enclosing module root.
// Findings print as file:line:col: analyzer: message (or a JSON array
// with -json, for CI annotation); the exit status is 1 when there are
// findings, 2 on load errors, 0 when clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/atomicmix"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/errsink"
	"repro/internal/lint/eventcontract"
	"repro/internal/lint/goleak"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/lockorder"
)

// Analyzers is the full suite, in reporting-name order.
var analyzers = []*lint.Analyzer{
	atomicmix.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	errsink.Analyzer,
	eventcontract.Analyzer,
	goleak.Analyzer,
	hotpath.Analyzer,
	lockorder.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array for CI annotation")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "majorcanlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "majorcanlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "majorcanlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "majorcanlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "majorcanlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
