package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench renders a minimal test2json stream with one output line per
// (benchmark, ns/op, bitslots/s) triple, in the shape `go test -json`
// emits for sub-benchmarks.
func writeBench(t *testing.T, name string, rows []benchRow) string {
	t.Helper()
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(`{"Time":"2026-08-08T00:00:00Z","Action":"run","Package":"repro","Test":"` + r.name + `"}` + "\n")
		b.WriteString(`{"Time":"2026-08-08T00:00:00Z","Action":"output","Package":"repro","Test":"` + r.name +
			`","Output":"    100\t  ` + r.nsPerOp + ` ns/op\t  ` + r.bitslots + ` bitslots/s\t 1024 B/op\t 12 allocs/op\n"}` + "\n")
	}
	b.WriteString(`{"Time":"2026-08-08T00:00:00Z","Action":"pass","Package":"repro"}` + "\n")
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type benchRow struct {
	name     string
	nsPerOp  string
	bitslots string
}

func TestParseBenchExtractsMetrics(t *testing.T) {
	path := writeBench(t, "old.json", []benchRow{
		{"BenchmarkEngineBitslots/undisturbed-sweep/fast", "5000", "17000000"},
		{"BenchmarkEngineBitslots/undisturbed-sweep/fast", "5200", "16000000"}, // -count=2: best wins
		{"BenchmarkMonteCarlo1k/can", "9000", "2500000"},
	})
	got, err := parseBench(path, func(u string) bool { return u == "bitslots/s" })
	if err != nil {
		t.Fatal(err)
	}
	fast := got["BenchmarkEngineBitslots/undisturbed-sweep/fast"]
	if fast["bitslots/s"] != 17000000 {
		t.Errorf("bitslots/s = %v, want best of repeated runs (17000000)", fast["bitslots/s"])
	}
	if fast["ns/op"] != 5000 {
		t.Errorf("ns/op = %v, want 5000 (min kept under lower-is-better)", fast["ns/op"])
	}
	if fast["B/op"] != 1024 || fast["allocs/op"] != 12 {
		t.Errorf("memory metrics not parsed: %v", fast)
	}
	if got["BenchmarkMonteCarlo1k/can"]["bitslots/s"] != 2500000 {
		t.Errorf("second benchmark missing: %v", got)
	}
}

func TestParseMetricsSkipsIterationCount(t *testing.T) {
	m := parseMetrics("     355\t   7189468 ns/op\t 8906230 bitslots/s")
	if len(m) != 2 {
		t.Fatalf("want 2 metrics, got %v", m)
	}
	if m["ns/op"] != 7189468 || m["bitslots/s"] != 8906230 {
		t.Errorf("parsed %v", m)
	}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	oldPath := writeBench(t, "old.json", []benchRow{
		{"BenchmarkA/x", "5000", "10000000"},
		{"BenchmarkB/y", "5000", "2000000"},
	})
	newPath := writeBench(t, "new.json", []benchRow{
		{"BenchmarkA/x", "5500", "9000000"}, // -10%: within 20%
		{"BenchmarkB/y", "4000", "2600000"}, // improvement
	})
	code, report, err := diff(oldPath, newPath, "bitslots/s", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0; report:\n%s", code, report)
	}
	if !strings.Contains(report, "OK") {
		t.Errorf("report missing OK:\n%s", report)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	oldPath := writeBench(t, "old.json", []benchRow{
		{"BenchmarkA/x", "5000", "10000000"},
		{"BenchmarkB/y", "5000", "2000000"},
	})
	newPath := writeBench(t, "new.json", []benchRow{
		{"BenchmarkA/x", "9000", "7000000"}, // -30%: beyond 20%
		{"BenchmarkB/y", "5000", "2000000"},
	})
	code, report, err := diff(oldPath, newPath, "bitslots/s", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1; report:\n%s", code, report)
	}
	if !strings.Contains(report, "REGRESSED") || !strings.Contains(report, "BenchmarkA/x") {
		t.Errorf("report does not flag the regressed benchmark:\n%s", report)
	}
}

func TestDiffIgnoresBenchmarksMissingFromOneSide(t *testing.T) {
	oldPath := writeBench(t, "old.json", []benchRow{
		{"BenchmarkGone/x", "5000", "10000000"},
		{"BenchmarkKept/y", "5000", "2000000"},
	})
	newPath := writeBench(t, "new.json", []benchRow{
		{"BenchmarkKept/y", "5000", "2100000"},
		{"BenchmarkNew/z", "5000", "9000000"},
	})
	code, report, err := diff(oldPath, newPath, "bitslots/s", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (absent benchmarks never gate); report:\n%s", code, report)
	}
	if !strings.Contains(report, "(absent)") {
		t.Errorf("report should list the vanished benchmark:\n%s", report)
	}
}

func TestDiffFailsWhenNothingCompared(t *testing.T) {
	oldPath := writeBench(t, "old.json", []benchRow{{"BenchmarkA/x", "5000", "10000000"}})
	newPath := writeBench(t, "new.json", nil)
	code, _, err := diff(oldPath, newPath, "bitslots/s", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 when no benchmark pairs up (a silently empty gate is no gate)", code)
	}
}

func TestRealBaselineParses(t *testing.T) {
	// The checked-in pr4 baseline must stay parseable: the CI gate
	// compares fresh runs against a checked-in file of this format.
	path := filepath.Join("..", "..", "BENCH_pr4.json")
	if _, err := os.Stat(path); err != nil {
		t.Skip("baseline not present")
	}
	got, err := parseBench(path, func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	v := got["BenchmarkMonteCarlo1k/majorcan_5"]["bitslots/s"]
	if v < 1e6 {
		t.Errorf("majorcan_5 bitslots/s = %v, want the checked-in baseline (~3.0e6)", v)
	}
}
