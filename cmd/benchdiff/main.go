// Command benchdiff compares two benchmark result files produced by
// `make bench` (test2json streams from `go test -bench -json`) and fails
// when a benchmark's throughput regressed beyond a threshold. It is the
// CI gate for the bitslots/s currency: a PR that slows the simulator by
// more than the threshold on any benchmark both files report turns the
// bench job red, with no external tooling involved.
//
// Usage:
//
//	benchdiff -old BENCH_pr10.json -new bench_new.json
//
// Benchmarks present in only one file are listed but never fail the
// comparison: new benchmarks appear and obsolete ones disappear as the
// tree evolves, and only like-for-like numbers are meaningful.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of a test2json line benchdiff reads.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBench extracts per-benchmark metric values from a test2json
// stream. The result maps benchmark name (the Test field, e.g.
// "BenchmarkMonteCarlo1k/can") to metric unit (e.g. "bitslots/s") to
// value. When a benchmark reports a metric more than once (-count > 1),
// the best value wins: for higher-is-better metrics that is the max, and
// comparing best against best is the least noise-sensitive choice on
// shared CI runners.
func parseBench(path string, higherIsBetter func(unit string) bool) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // interleaved non-JSON noise is not ours to police
		}
		if ev.Action != "output" || !strings.HasPrefix(ev.Test, "Benchmark") {
			continue
		}
		// Each unit updates its own key of the result map, so visiting
		// order cannot change the outcome.
		//lint:allow determinism -- per-unit updates are independent; the result is order-insensitive
		for unit, value := range parseMetrics(ev.Output) {
			m := out[ev.Test]
			if m == nil {
				m = make(map[string]float64)
				out[ev.Test] = m
			}
			old, seen := m[unit]
			better := value > old
			if !higherIsBetter(unit) {
				better = value < old
			}
			if !seen || better {
				m[unit] = value
			}
		}
	}
	return out, sc.Err()
}

// parseMetrics reads "value unit" pairs from a benchmark output line,
// e.g. "  355  7189468 ns/op  8906230 bitslots/s  4617993 B/op". The
// leading iteration count has no unit and is skipped.
func parseMetrics(s string) map[string]float64 {
	fields := strings.Fields(s)
	var out map[string]float64
	for i := 0; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if _, err := strconv.ParseFloat(unit, 64); err == nil || !strings.Contains(unit, "/") {
			continue // two adjacent numbers, or a bare word: not a metric
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[unit] = v
		i++ // consume the unit
	}
	return out
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline bench file (test2json)")
		newPath   = flag.String("new", "", "candidate bench file (test2json)")
		metric    = flag.String("metric", "bitslots/s", "metric unit to gate on (higher is better)")
		threshold = flag.Float64("threshold", 0.20, "max allowed fractional regression (0.20 = 20%)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	code, report, err := diff(*oldPath, *newPath, *metric, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	os.Exit(code)
}

// diff compares the metric across both files and renders a report. Exit
// code 0 means no benchmark regressed beyond the threshold, 1 means at
// least one did.
func diff(oldPath, newPath, metric string, threshold float64) (int, string, error) {
	higher := func(string) bool { return true } // the gated metric is a throughput
	oldB, err := parseBench(oldPath, higher)
	if err != nil {
		return 0, "", fmt.Errorf("parse %s: %w", oldPath, err)
	}
	newB, err := parseBench(newPath, higher)
	if err != nil {
		return 0, "", fmt.Errorf("parse %s: %w", newPath, err)
	}

	var names []string
	//lint:allow determinism -- keys are collected here and sorted below before any output
	for name, m := range oldB {
		if _, ok := m[metric]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	regressed := 0
	compared := 0
	for _, name := range names {
		ov := oldB[name][metric]
		nv, ok := newB[name][metric]
		if !ok {
			fmt.Fprintf(&b, "  %-60s %14.0f -> (absent)\n", name, ov)
			continue
		}
		compared++
		ratio := nv / ov
		mark := ""
		if nv < ov*(1-threshold) {
			regressed++
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "  %-60s %14.0f -> %14.0f  (%0.2fx)%s\n", name, ov, nv, ratio, mark)
	}
	head := fmt.Sprintf("benchdiff: %s, %d benchmark(s) compared, threshold %0.0f%%\n",
		metric, compared, threshold*100)
	if compared == 0 {
		return 1, head + "  no common benchmarks report the metric; nothing was gated\n", nil
	}
	if regressed > 0 {
		return 1, head + b.String() + fmt.Sprintf("FAIL: %d benchmark(s) regressed more than %0.0f%%\n", regressed, threshold*100), nil
	}
	return 0, head + b.String() + "OK\n", nil
}
