// Command scenarios replays the error scenarios of the MajorCAN paper's
// figures on the bit-level simulator and prints per-node timelines in the
// style of the paper, together with the consistency verdicts.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/scenario"
)

func main() {
	fig := flag.String("fig", "all", "figure to replay: 1a, 1b, 1c, 2, 3a, 3b, 4, 5, can5 or all")
	m := flag.Int("m", core.DefaultM, "MajorCAN error tolerance parameter m")
	showTrace := flag.Bool("trace", true, "print per-node bit timelines")
	flag.Parse()

	run := func(name string, f func() (*scenario.Outcome, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println("==", out.Name, "==")
		fmt.Println(out.Summary())
		if *showTrace {
			if first, last, ok := out.Recorder.EOFWindow(0, 1); ok {
				from := uint64(0)
				if first > 8 {
					from = first - 8
				}
				fmt.Println()
				fmt.Print(out.Recorder.Render(from, last+40))
				fmt.Println("legend: d/r sampled level, D driving dominant, R driving recessive in-frame, ! disturbed sample, . idle")
			}
		}
		fmt.Println()
	}

	std := core.NewStandard()
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("1a") {
		run("Fig. 1a", func() (*scenario.Outcome, error) { return scenario.Fig1a(std) })
	}
	if want("1b") {
		run("Fig. 1b", func() (*scenario.Outcome, error) { return scenario.Fig1b(std) })
	}
	if want("1c") {
		run("Fig. 1c", func() (*scenario.Outcome, error) { return scenario.Fig1c(std) })
	}
	if want("2") {
		a, b, c, err := scenario.Fig2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: fig 2: %v\n", err)
			os.Exit(1)
		}
		for _, out := range []*scenario.Outcome{a, b, c} {
			fmt.Println("==", out.Name, "==")
			fmt.Println(out.Summary())
			fmt.Println()
		}
	}
	if want("3a") {
		run("Fig. 3a", scenario.Fig3a)
	}
	if want("3b") {
		run("Fig. 3b", scenario.Fig3b)
	}
	if want("4") {
		rows, err := scenario.Fig4(*m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: fig 4: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("== Fig. 4: behaviour of a MajorCAN_%d node ==\n", *m)
		fmt.Print(scenario.RenderFig4(rows))
		fmt.Println()
	}
	if want("5") {
		run("Fig. 5", func() (*scenario.Outcome, error) { return scenario.Fig5(*m) })
	}
	if want("major-new") || *fig == "all" {
		run("new scenario under MajorCAN", func() (*scenario.Outcome, error) {
			return scenario.NewScenario(core.MustMajorCAN(*m))
		})
	}
	if want("can5") {
		fmt.Println("== CAN5 total-order example (Section 2.2) ==")
		for _, policy := range []node.EOFPolicy{std, core.NewMinorCAN(), core.MustMajorCAN(*m)} {
			out, err := scenario.CAN5(policy)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenarios: can5: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-12s %s\n", policy.Name()+":", out.Summary())
		}
		fmt.Println()
	}
}
