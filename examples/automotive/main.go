// Automotive: a distributed control workload in the paper's reference
// style — many nodes periodically broadcasting sensor frames at high bus
// load under the spatial random error model — compared across standard
// CAN, MinorCAN and MajorCAN_5. Errors are injected only into the
// end-of-frame region (where all the paper's inconsistencies live) at an
// exaggerated rate so the rare events become visible in a short run.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/sim"
)

func main() {
	fmt.Println("automotive workload: 5 ECUs, Monte Carlo over 1500 frames, EOF-region ber* = 0.02")
	fmt.Println()
	fmt.Printf("%-12s  %-8s  %-12s  %-12s  %-10s\n", "protocol", "frames", "IMOs", "duplicates", "verdict")
	for _, policy := range []node.EOFPolicy{
		core.NewStandard(),
		core.NewMinorCAN(),
		core.MustMajorCAN(5),
	} {
		res, err := sim.MonteCarlo(sim.MCConfig{
			Policy:        policy,
			Nodes:         5,
			Frames:        1500,
			BerStar:       0.02,
			Seed:          2026,
			EOFOnly:       true,
			ResetCounters: true,
			RotateOrigins: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ATOMIC BROADCAST"
		if !res.Report.AtomicBroadcast() {
			verdict = "violated"
		}
		fmt.Printf("%-12s  %-8d  %-12d  %-12d  %-10s\n",
			policy.Name(), res.FramesSent, res.IMOs, res.Duplicates, verdict)
	}

	fmt.Println()
	fmt.Println("periodic 90%-load run (8 ECUs, error-free) under MajorCAN_5:")
	res, err := sim.RunWorkload(sim.WorkloadConfig{
		Policy: core.MustMajorCAN(5),
		Nodes:  8,
		Slots:  50000,
		Load:   0.9,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  offered %d frames, %d transmitted, %d deliveries, bus utilisation %.0f%%\n",
		res.Offered, res.TxSuccess, res.Delivered, 100*res.Utilisation)
	fmt.Printf("  IMOs=%d duplicates=%d\n", res.IMOs, res.Duplicates)
}
