// Inconsistency: replay the paper's new inconsistency scenario (Fig. 3) —
// two well-placed bit disturbances — against all three protocol variants.
// Standard CAN and MinorCAN suffer an inconsistent message omission with a
// perfectly correct transmitter; MajorCAN delivers everywhere.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/scenario"
)

func main() {
	for _, policy := range []node.EOFPolicy{
		core.NewStandard(),
		core.NewMinorCAN(),
		core.MustMajorCAN(5),
	} {
		out, err := scenario.NewScenario(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("==", out.Name, "==")
		fmt.Println(out.Summary())
		if first, last, ok := out.Recorder.EOFWindow(0, 1); ok {
			from := uint64(0)
			if first > 6 {
				from = first - 6
			}
			fmt.Println()
			fmt.Print(out.Recorder.Render(from, last+40))
		}
		fmt.Println()
	}
	fmt.Println("legend: d/r sampled level, D driving dominant, R driving recessive in-frame,")
	fmt.Println("        ! disturbed sample, . idle; station 0 = transmitter, X1/X2 and Y3/Y4 = receiver sets")
}
