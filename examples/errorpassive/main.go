// Errorpassive: the paper's Section 1 impairment. An error-passive
// receiver signals errors with recessive flags nobody can see: when it is
// the only node to detect an error, the transmitter never retransmits and
// the passive node silently omits the message — Agreement violated before
// any of the subtler scenarios even enter the picture. The paper's fix is
// to switch nodes off at the warning limit (96) so they never become
// error-passive; the second run shows that policy in action.
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// victimDisturbance flips one data-field bit in the victim's view so that
// only the victim detects an error in the frame.
func victimDisturbance(victim int) *errmodel.Script {
	fired := false
	return errmodel.NewScript(&errmodel.Rule{
		Stations: []int{victim},
		When: func(_ uint64, _ int, v bus.ViewContext) bool {
			if fired || v.Phase != bus.PhaseFrame || v.Field != frame.FieldData {
				return false
			}
			fired = true
			return true
		},
	})
}

func main() {
	const victim = 3

	fmt.Println("run 1: the victim is error-passive (REC = 128), no switch-off policy")
	c := sim.MustCluster(sim.ClusterOptions{Nodes: 4, Policy: core.NewStandard()})
	c.Nodes[victim].SetErrorCounters(0, node.PassiveLimit)
	c.Net.AddDisturber(victimDisturbance(victim))
	f := &frame.Frame{ID: 0x21, Data: []byte{0x00, 0x00}}
	if err := c.Nodes[0].Enqueue(f); err != nil {
		log.Fatal(err)
	}
	if !c.RunUntilQuiet(4000) {
		log.Fatal("no quiescence")
	}
	fmt.Printf("  transmitter believes: %d success(es), no retransmission\n", c.Nodes[0].TxSuccesses())
	for i := 1; i < 4; i++ {
		fmt.Printf("  station %d (%s): delivered %d cop(ies)\n",
			i, c.Nodes[i].Mode(), c.DeliveryCount(i, f))
	}
	fmt.Println("  => the passive victim omitted the message: Agreement violated")

	fmt.Println()
	fmt.Println("run 2: the paper's policy — switch off at the warning limit (96)")
	c2 := sim.MustCluster(sim.ClusterOptions{
		Nodes: 4, Policy: core.NewStandard(), WarningSwitchOff: true,
	})
	c2.Nodes[victim].SetErrorCounters(0, node.WarningLimit-1)
	c2.Net.AddDisturber(victimDisturbance(victim))
	if err := c2.Nodes[0].Enqueue(f); err != nil {
		log.Fatal(err)
	}
	if !c2.RunUntilQuiet(4000) {
		log.Fatal("no quiescence")
	}
	for i := 1; i < 4; i++ {
		fmt.Printf("  station %d (%s): delivered %d cop(ies)\n",
			i, c2.Nodes[i].Mode(), c2.DeliveryCount(i, f))
	}
	fmt.Println("  => the failing node disconnected itself instead of lying:")
	fmt.Println("     every node still on the bus is error-active and consistency is preserved")
}
