// Quickstart: build a small MajorCAN bus through the public API, broadcast
// a frame and observe that every node delivers it exactly once.
package main

import (
	"fmt"
	"log"

	"repro/majorcan"
)

func main() {
	// A 4-station bus running MajorCAN with the paper's proposed m = 5.
	bus, err := majorcan.NewBus(majorcan.BusConfig{
		Nodes:    4,
		Protocol: majorcan.MajorCAN(5),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Station 0 broadcasts a data frame.
	msg := majorcan.Message{ID: 0x123, Data: []byte("hello")}
	if err := bus.Send(0, msg); err != nil {
		log.Fatal(err)
	}

	// Run the bit-level simulation until the bus is idle again.
	if !bus.Run(majorcan.DefaultSlotBudget) {
		log.Fatal("bus did not become quiet")
	}

	fmt.Printf("transmitter: %d successful transmission(s)\n", bus.TxSuccesses(0))
	for i := 1; i < bus.Nodes(); i++ {
		for _, d := range bus.DeliveredAt(i) {
			fmt.Printf("station %d delivered %v at bit slot %d\n", i, d.Message, d.Slot)
		}
	}

	// The same two disturbances that defeat standard CAN (the paper's
	// Fig. 3a) are harmless here.
	res, err := majorcan.ReplayNewScenario(majorcan.MajorCAN(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary)
}
