// Totalorder: contrast the ordering guarantees of the broadcast stacks.
//
//  1. EDCAN keeps Agreement in the paper's new scenario but delivers in
//     different orders at different nodes (no Total Order) — shown with a
//     deterministic inversion.
//  2. The same workload over raw MajorCAN controllers satisfies all five
//     Atomic Broadcast properties with zero protocol traffic.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/hlp"
	"repro/internal/node"
)

func run(name string, policy node.EOFPolicy, proto hlp.Protocol) {
	stack, err := hlp.NewStack(5, policy, hlp.Options{Protocol: proto})
	if err != nil {
		log.Fatal(err)
	}
	// The Fig. 3a disturbance pattern: stations 1 and 2 (the X set) miss
	// the frame of station 3, the transmitter is blinded at its last EOF
	// bit.
	stack.Cluster.Net.AddDisturber(errmodel.NewScript(
		errmodel.AtEOFBit([]int{1, 2}, policy.EOFBits()-1, 1),
		errmodel.AtEOFBit([]int{3}, policy.EOFBits(), 1),
	))

	// Station 3 broadcasts message A; station 0 queues message C while A
	// is still on the wire (C's identifier wins arbitration over EDCAN's
	// replicas of A).
	if _, err := stack.Procs[3].Broadcast([]byte{0xA}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		stack.Step()
	}
	if _, err := stack.Procs[0].Broadcast([]byte{0xC}); err != nil {
		log.Fatal(err)
	}
	if !stack.RunUntilQuiet(60000) {
		log.Fatal("stack did not quiesce")
	}

	fmt.Println("==", name, "==")
	for i, p := range stack.Procs {
		fmt.Printf("  station %d delivered:", i)
		for _, d := range p.Delivered() {
			fmt.Printf(" %s", d.Key)
		}
		fmt.Println()
	}
	fmt.Printf("  %s\n\n", stack.Check().Summary())
}

func main() {
	run("EDCAN over standard CAN (Agreement yes, Total Order no)", core.NewStandard(), hlp.EDCAN)
	run("raw controllers over MajorCAN_5 (full Atomic Broadcast)", core.MustMajorCAN(5), hlp.RawCAN)
	run("TOTCAN over standard CAN (drops the unconfirmed message consistently)", core.NewStandard(), hlp.TOTCAN)
}
