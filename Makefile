GO ?= go

.PHONY: all build lint test race bench fuzz-smoke crashsmoke repro chaos verify-envelope clean

all: build lint test

build:
	$(GO) build ./...

# Static analysis: go vet plus the majorcanlint multichecker — all eight
# analyzers: the determinism, hot-path, telemetry and atomics contracts
# (DESIGN.md §9) and the concurrency-safety suite — lockorder, ctxflow,
# goleak, errsink (DESIGN.md §13). The tree must stay at zero findings;
# intentional exceptions carry `//lint:allow <analyzer> -- <reason>`
# annotations, each with a reviewable reason.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/majorcanlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCHTIME=1x gives a fast smoke pass; raise it for stable numbers
# (e.g. BENCHTIME=2s). Results land in $(BENCH_OUT) as test2json lines
# for machine consumption — cmd/benchdiff compares two such files and
# is the CI regression gate on bitslots/s.
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_pr10.json

# -p 1 serializes the per-package test binaries: without it `go test
# ./...` runs several benchmark processes at once and they steal each
# other's cores, depressing every number.
bench:
	$(GO) test -p 1 -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json ./... | tee $(BENCH_OUT)

# Short coverage-guided fuzz pass over the bit-stuffing codec (the CI
# smoke); raise FUZZTIME locally for a deeper run.
FUZZTIME ?= 30s

fuzz-smoke:
	$(GO) test -fuzz=FuzzDestuff -fuzztime=$(FUZZTIME) -run '^$$' ./internal/frame

# Kill-and-recover smoke: SIGKILL a real mcservd (the re-executed test
# binary running serve.DaemonMain) at CRASH_POINTS randomized points
# mid-campaign, restart it on the same spool, and assert no accepted job
# is lost, no partial result is served, and the recovered results are
# byte-identical to an uninterrupted run (DESIGN.md §11).
CRASH_POINTS ?= 20

crashsmoke:
	CRASH_POINTS=$(CRASH_POINTS) $(GO) test ./internal/serve/ -run TestKillAndRecover -count=1 -v -timeout 20m

# Regenerate every table and figure of the paper.
repro:
	$(GO) run ./cmd/table1
	$(GO) run ./cmd/scenarios -fig all -trace=false
	$(GO) run ./cmd/overhead
	$(GO) run ./cmd/tolerance
	$(GO) run ./cmd/mcsim -policy can -frames 2500 -berstar 0.02 -seed 7
	$(GO) run ./cmd/mcsim -policy majorcan_5 -frames 2500 -berstar 0.02 -seed 7

# Fault-injection campaign: rediscover the Fig. 3a counterexample on
# standard CAN, shrink it, and verify the replay artifact bit-for-bit.
chaos:
	$(GO) run ./cmd/chaos -policy can -trials 200 -kinds view-flip -probes agreement -seed 12 -stopfirst -out findings/
	$(GO) run ./cmd/chaos -replay findings/finding_000.json

# Exhaustive verification of MajorCAN_5 over its complete design envelope
# (all <=5-flip patterns; ~25.7M simulations, ~27 min single-threaded).
verify-envelope:
	$(GO) run ./cmd/verify -policy majorcan_5 -k 5 -parallel 8

clean:
	$(GO) clean ./...
