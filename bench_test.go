// Package repro's top-level benchmarks regenerate every table and figure
// of the MajorCAN paper (see DESIGN.md for the per-experiment index) and
// measure the simulator's throughput. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkTable1 regenerates Table 1 (expressions 4 and 5 under the ber*
// model) and reports the three rows as custom metrics.
func BenchmarkTable1(b *testing.B) {
	var rows []analytic.Table1Row
	for i := 0; i < b.N; i++ {
		rows = analytic.Table1()
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.NewPerHour, fmt.Sprintf("IMOnew/h@ber=%.0e", r.Ber))
		b.ReportMetric(r.OldPerHour, fmt.Sprintf("IMOold/h@ber=%.0e", r.Ber))
	}
	if len(rows) != 3 {
		b.Fatal("table must have 3 rows")
	}
}

func benchScenario(b *testing.B, run func() (*scenario.Outcome, error), wantIMO, wantDup bool) {
	b.Helper()
	var out *scenario.Outcome
	var err error
	for i := 0; i < b.N; i++ {
		out, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if out.IMO != wantIMO {
		b.Fatalf("%s: IMO = %v, want %v", out.Name, out.IMO, wantIMO)
	}
	if out.DoubleReception != wantDup {
		b.Fatalf("%s: double reception = %v, want %v", out.Name, out.DoubleReception, wantDup)
	}
	b.ReportMetric(float64(out.Recorder.Len()), "bitslots")
}

// BenchmarkFig1a: the last-bit rule keeps consistency in standard CAN.
func BenchmarkFig1a(b *testing.B) {
	benchScenario(b, func() (*scenario.Outcome, error) { return scenario.Fig1a(core.NewStandard()) }, false, false)
}

// BenchmarkFig1b: double reception at the Y set in standard CAN.
func BenchmarkFig1b(b *testing.B) {
	benchScenario(b, func() (*scenario.Outcome, error) { return scenario.Fig1b(core.NewStandard()) }, false, true)
}

// BenchmarkFig1c: inconsistent message omission after a transmitter crash.
func BenchmarkFig1c(b *testing.B) {
	benchScenario(b, func() (*scenario.Outcome, error) { return scenario.Fig1c(core.NewStandard()) }, true, false)
}

// BenchmarkFig2 replays the Fig. 1 scenarios under MinorCAN: all three end
// consistently.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x, y, z, err := scenario.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if x.IMO || y.IMO || z.IMO || x.DoubleReception || y.DoubleReception || z.DoubleReception {
			b.Fatal("MinorCAN must keep the Fig. 1 scenarios consistent")
		}
	}
}

// BenchmarkFig3a: the new scenario defeats standard CAN (IMO with a
// correct transmitter).
func BenchmarkFig3a(b *testing.B) {
	benchScenario(b, scenario.Fig3a, true, false)
}

// BenchmarkFig3b: the new scenario defeats MinorCAN too.
func BenchmarkFig3b(b *testing.B) {
	benchScenario(b, scenario.Fig3b, true, false)
}

// BenchmarkFig4 regenerates the MajorCAN_5 per-position behaviour table.
func BenchmarkFig4(b *testing.B) {
	var rows []scenario.Fig4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = scenario.Fig4(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) != 11 {
		b.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if !r.BusConsistent {
			b.Fatalf("%s: inconsistent", r.Label())
		}
	}
}

// BenchmarkFig5: MajorCAN_5 stays consistent under five errors.
func BenchmarkFig5(b *testing.B) {
	benchScenario(b, func() (*scenario.Outcome, error) { return scenario.Fig5(5) }, false, false)
}

// BenchmarkOverhead regenerates the Sections 5-6 overhead comparison: the
// measured best-case overhead must equal the paper's 2m-7 exactly.
func BenchmarkOverhead(b *testing.B) {
	var rows []sim.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, _, err = sim.MeasureOverhead(
			func(m int) node.EOFPolicy { return core.MustMajorCAN(m) },
			core.NewStandard(), []int{3, 4, 5, 6, 7, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		if r.BestOverhead != r.PaperBest {
			b.Fatalf("m=%d: measured best overhead %d != paper %d", r.M, r.BestOverhead, r.PaperBest)
		}
		if r.M == 5 {
			b.ReportMetric(float64(r.BestOverhead), "bestOverheadBits@m=5")
			b.ReportMetric(float64(r.WorstSlots-r.BestSlots), "worstExtensionBits@m=5")
		}
	}
}

// BenchmarkPropertyMatrix runs the protocol/property comparison of the
// paper's Sections 2-5: the Fig. 3 disturbance pattern against each
// variant, reporting which keeps Agreement.
func BenchmarkPropertyMatrix(b *testing.B) {
	policies := []node.EOFPolicy{core.NewStandard(), core.NewMinorCAN(), core.MustMajorCAN(5)}
	wantIMO := []bool{true, true, false}
	for i := 0; i < b.N; i++ {
		for k, p := range policies {
			out, err := scenario.NewScenario(p)
			if err != nil {
				b.Fatal(err)
			}
			if out.IMO != wantIMO[k] {
				b.Fatalf("%s: IMO = %v, want %v", p.Name(), out.IMO, wantIMO[k])
			}
		}
	}
}

// BenchmarkMajorCANmSweep measures the error-free frame cost across m —
// the tolerance/overhead ablation called out in DESIGN.md.
func BenchmarkMajorCANmSweep(b *testing.B) {
	for _, m := range []int{3, 5, 8, 12} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var slots int
			for i := 0; i < b.N; i++ {
				var err error
				slots, err = sim.FrameOccupancy(core.MustMajorCAN(m), sim.BestCase)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(slots), "slots/frame")
		})
	}
}

// BenchmarkErrorModels contrasts the paper's spatial ber* model with the
// whole-bus global error model (ablation): under the global model every
// node sees the same disturbance, so the classic inconsistency patterns
// cannot even form.
func BenchmarkErrorModels(b *testing.B) {
	run := func(b *testing.B, global bool) *sim.MCResult {
		res, err := sim.MonteCarlo(sim.MCConfig{
			Policy:        core.NewStandard(),
			Nodes:         5,
			Frames:        300,
			BerStar:       0.02,
			Seed:          9,
			EOFOnly:       true,
			ResetCounters: true,
			GlobalModel:   global,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("spatial", func(b *testing.B) {
		var res *sim.MCResult
		for i := 0; i < b.N; i++ {
			res = run(b, false)
		}
		b.ReportMetric(float64(res.Duplicates), "duplicates")
		b.ReportMetric(float64(res.IMOs), "IMOs")
	})
	b.Run("global", func(b *testing.B) {
		var res *sim.MCResult
		for i := 0; i < b.N; i++ {
			res = run(b, true)
		}
		// Under the whole-bus model every node sees the same level, so the
		// divergent-view inconsistency patterns cannot form.
		b.ReportMetric(float64(res.Duplicates), "duplicates")
		b.ReportMetric(float64(res.IMOs), "IMOs")
	})
}

// BenchmarkSimulatorThroughput measures raw bit-slot simulation speed for
// a loaded 32-node bus (the paper's reference size).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, n := range []int{5, 32} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			cluster := sim.MustCluster(sim.ClusterOptions{Nodes: n, Policy: core.MustMajorCAN(5)})
			for i := 0; i < n; i++ {
				_ = cluster.Nodes[i].Enqueue(&frame.Frame{ID: uint32(0x100 + i), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cluster.Net.Step()
			}
		})
	}
}

// BenchmarkFrameEncode measures the frame encoder.
func BenchmarkFrameEncode(b *testing.B) {
	f := &frame.Frame{ID: 0x2AA, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := frame.Encode(f, 10); err != nil {
			b.Fatal(err)
		}
	}
}
