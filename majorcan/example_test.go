package majorcan_test

import (
	"fmt"

	"repro/majorcan"
)

// A minimal broadcast: one sender, three receivers, MajorCAN_5.
func Example() {
	bus, err := majorcan.NewBus(majorcan.BusConfig{
		Nodes:    4,
		Protocol: majorcan.MajorCAN(5),
	})
	if err != nil {
		panic(err)
	}
	msg := majorcan.Message{ID: 0x123, Data: []byte("hi")}
	if err := bus.Send(0, msg); err != nil {
		panic(err)
	}
	bus.Run(majorcan.DefaultSlotBudget)
	for i := 1; i < bus.Nodes(); i++ {
		fmt.Printf("station %d delivered %d message(s)\n", i, len(bus.DeliveredAt(i)))
	}
	// Output:
	// station 1 delivered 1 message(s)
	// station 2 delivered 1 message(s)
	// station 3 delivered 1 message(s)
}

// The paper's new inconsistency scenario through the public API: two bit
// disturbances defeat standard CAN but not MajorCAN.
func ExampleReplayNewScenario() {
	for _, p := range []majorcan.Protocol{majorcan.StandardCAN(), majorcan.MajorCAN(5)} {
		res, err := majorcan.ReplayNewScenario(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: inconsistent=%v\n", p.Name(), res.Inconsistent)
	}
	// Output:
	// CAN: inconsistent=true
	// MajorCAN_5: inconsistent=false
}

// Table 1 of the paper, recomputed.
func ExampleTable1() {
	rows := majorcan.Table1()
	fmt.Printf("ber=%.0e IMOnew/hour=%.2e\n", rows[0].Ber, rows[0].NewPerHour)
	// Output:
	// ber=1e-04 IMOnew/hour=8.82e-03
}
