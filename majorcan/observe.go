package majorcan

import (
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Telemetry re-exports the observability layer so applications can watch
// a Bus without importing internal packages. Events flow synchronously
// into the configured Sink as the simulation advances (a Bus runs on one
// goroutine, so no ring buffer is involved); metrics accumulate into a
// Metrics registry that snapshots to JSON.

// Event is one protocol-level occurrence on the bus: a frame starting,
// an error flag, a retransmission, a delivery verdict.
type Event = obs.Event

// Kind enumerates event types (EventFrameStart, EventErrorFlagPrimary, ...).
type Kind = obs.Kind

// Event kinds, re-exported under the public API's naming.
const (
	EventFrameStart         = obs.KindFrameStart
	EventArbitrationLoss    = obs.KindArbitrationLoss
	EventStuffError         = obs.KindStuffError
	EventErrorFlagPrimary   = obs.KindErrorFlagPrimary
	EventErrorFlagSecondary = obs.KindErrorFlagSecondary
	EventEOFVoteCorrected   = obs.KindEOFVoteCorrected
	EventRetransmit         = obs.KindRetransmit
	EventFrameAccepted      = obs.KindFrameAccepted
	EventIMO                = obs.KindIMO
	EventBusOff             = obs.KindBusOff
	EventRecover            = obs.KindRecover
)

// Sink consumes events; SinkFunc adapts a function.
type Sink = obs.Sink

// SinkFunc adapts a plain function to a Sink.
type SinkFunc = obs.SinkFunc

// EventLog is an in-memory event sink (obs.Memory).
type EventLog = obs.Memory

// NewEventLog returns an empty in-memory event sink.
func NewEventLog() *EventLog { return obs.NewMemory() }

// Metrics is an allocation-free registry of protocol counters and
// histograms; snapshot it with SnapshotMetrics or json.Marshal.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry labelled with the
// protocol name once attached to a bus.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WriteEventsJSONL serialises events to the writer as canonical JSONL
// (sorted by slot, then station), tagging each line with the run id.
func WriteEventsJSONL(w io.Writer, run int64, events []Event) error {
	return obs.WriteJSONL(w, run, events)
}

// MetricsSnapshot is the JSON-ready view of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// SnapshotMetrics captures the registry's current totals; elapsed scales
// the throughput rates (pass 0 to omit them).
func SnapshotMetrics(m *Metrics, elapsed time.Duration) MetricsSnapshot {
	return m.Snapshot(elapsed)
}

// busTelemetry wires cfg's telemetry into cluster options. Kept separate
// from NewBus so the zero BusConfig pays nothing.
func busTelemetry(cfg BusConfig, opts *sim.ClusterOptions) {
	sink := obs.Multi(cfg.Events, cfg.Metrics)
	if sink == nil {
		return
	}
	opts.Events = sink
	if cfg.Metrics != nil && cfg.Protocol.valid() {
		cfg.Metrics.SetLabel(cfg.Protocol.Name())
	}
}
