package majorcan

import (
	"fmt"

	"repro/internal/chaos"
)

// ChaosCampaignConfig configures a randomised fault-injection campaign:
// random disturbance scripts are executed against a cluster, probed for
// Atomic Broadcast, liveness and fault-confinement violations, and every
// counterexample is shrunk to a minimal script.
type ChaosCampaignConfig struct {
	// Protocol applies to every station.
	Protocol Protocol
	// Nodes is the number of stations (>= 3).
	Nodes int
	// Frames is the number of frames broadcast per trial (default 1).
	Frames int
	// Trials is the number of random scripts to try (default 100).
	Trials int
	// MaxFaults bounds the disturbances per script (default 4).
	MaxFaults int
	// Seed makes the campaign reproducible.
	Seed int64
	// FaultKinds restricts the fault classes drawn: "view-flip",
	// "stuck-dominant", "mute", "crash", "bus-off", "clock-glitch"
	// (default: all).
	FaultKinds []string
	// RotateOrigins sends frame i from station i mod Nodes.
	RotateOrigins bool
	// AutoRecover enables bus-off recovery on every node, so "bus-off"
	// faults become crash-then-restart schedules.
	AutoRecover bool
	// WarningSwitchOff enables the paper's switch-off policy.
	WarningSwitchOff bool
	// StopAtFirst ends the campaign at the first finding.
	StopAtFirst bool
}

// ChaosFinding is one minimal counterexample found by a campaign.
type ChaosFinding struct {
	// Trial is the campaign trial that found it.
	Trial int
	// Faults renders the shrunk, minimal disturbance script.
	Faults []string
	// Violations are the invariant violations the script provokes.
	Violations []string
	// Artifact is the deterministic JSON replay artifact; feed it to
	// ReplayChaosArtifact or `chaos -replay` to re-execute bit-for-bit.
	Artifact []byte
}

// RunChaosCampaign executes a fault-injection campaign and returns its
// findings in trial order.
func RunChaosCampaign(cfg ChaosCampaignConfig) ([]ChaosFinding, error) {
	if !cfg.Protocol.valid() {
		return nil, fmt.Errorf("majorcan: ChaosCampaignConfig.Protocol not set")
	}
	frames := cfg.Frames
	if frames == 0 {
		frames = 1
	}
	kinds := make([]chaos.FaultKind, len(cfg.FaultKinds))
	for i, k := range cfg.FaultKinds {
		kinds[i] = chaos.FaultKind(k)
	}
	c := chaos.Campaign{
		Name: "majorcan-api",
		Base: chaos.Script{
			Version:          chaos.ScriptVersion,
			Protocol:         cfg.Protocol.Name(),
			Nodes:            cfg.Nodes,
			Frames:           frames,
			RotateOrigins:    cfg.RotateOrigins,
			AutoRecover:      cfg.AutoRecover,
			WarningSwitchOff: cfg.WarningSwitchOff,
		},
		Trials:      cfg.Trials,
		MaxFaults:   cfg.MaxFaults,
		FaultKinds:  kinds,
		Seed:        cfg.Seed,
		StopAtFirst: cfg.StopAtFirst,
	}
	res, err := c.Run()
	if err != nil {
		return nil, err
	}
	out := make([]ChaosFinding, 0, len(res.Findings))
	for _, f := range res.Findings {
		artifact, err := f.Artifact(c.Name).Encode()
		if err != nil {
			return nil, err
		}
		faults := make([]string, len(f.Shrunk.Faults))
		for i, fault := range f.Shrunk.Faults {
			faults[i] = fault.String()
		}
		out = append(out, ChaosFinding{
			Trial:      f.Trial,
			Faults:     faults,
			Violations: f.Violations,
			Artifact:   artifact,
		})
	}
	return out, nil
}

// ReplayChaosArtifact re-executes a campaign artifact and verifies that it
// reproduces the recorded verdict bit-for-bit. It returns the replayed
// violations and whether digest and verdict both matched the recording.
func ReplayChaosArtifact(artifact []byte) (violations []string, matches bool, err error) {
	a, err := chaos.DecodeArtifact(artifact)
	if err != nil {
		return nil, false, err
	}
	rr, err := chaos.Replay(a)
	if err != nil {
		return nil, false, err
	}
	return rr.Verdict.Violations, rr.Matches(), nil
}
