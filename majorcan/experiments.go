package majorcan

import (
	"fmt"

	"repro/internal/sim"
)

// ConsistencyExperiment configures a Monte Carlo consistency measurement
// through the public API.
type ConsistencyExperiment struct {
	// Protocol under test.
	Protocol Protocol
	// Nodes on the bus (>= 3).
	Nodes int
	// Frames to broadcast.
	Frames int
	// BerStar is the per-node per-bit view flip probability.
	BerStar float64
	// Seed makes the run reproducible.
	Seed int64
	// EOFOnly restricts errors to the end-of-frame decision region
	// (importance sampling for the paper's scenarios).
	EOFOnly bool
}

// ConsistencyResult summarises a consistency experiment.
type ConsistencyResult struct {
	// Frames actually broadcast.
	Frames int
	// InconsistentOmissions counts frames some correct receiver delivered
	// and another never did.
	InconsistentOmissions int
	// DoubleReceptions counts (frame, receiver) duplicate deliveries.
	DoubleReceptions int
	// BitFlips injected by the error model.
	BitFlips uint64
	// AtomicBroadcast reports whether all five properties held across the
	// whole run.
	AtomicBroadcast bool
	// Violations renders the property checker's findings.
	Violations string
}

// MeasureConsistency runs the experiment.
func MeasureConsistency(cfg ConsistencyExperiment) (ConsistencyResult, error) {
	if !cfg.Protocol.valid() {
		return ConsistencyResult{}, fmt.Errorf("majorcan: Protocol not set")
	}
	res, err := sim.MonteCarlo(sim.MCConfig{
		Policy:        cfg.Protocol.policy,
		Nodes:         cfg.Nodes,
		Frames:        cfg.Frames,
		BerStar:       cfg.BerStar,
		Seed:          cfg.Seed,
		EOFOnly:       cfg.EOFOnly,
		ResetCounters: true,
	})
	if err != nil {
		return ConsistencyResult{}, err
	}
	return ConsistencyResult{
		Frames:                res.FramesSent,
		InconsistentOmissions: res.IMOs,
		DoubleReceptions:      res.Duplicates,
		BitFlips:              res.BitFlips,
		AtomicBroadcast:       res.Report.AtomicBroadcast(),
		Violations:            res.Report.Summary(),
	}, nil
}

// FrameOverhead returns the measured error-free per-frame bus occupancy
// difference of the protocol against standard CAN, in bit times (the
// paper's 2m-7 for MajorCAN_m).
func FrameOverhead(p Protocol) (int, error) {
	if !p.valid() {
		return 0, fmt.Errorf("majorcan: Protocol not set")
	}
	base, err := sim.FrameOccupancy(StandardCAN().policy, sim.BestCase)
	if err != nil {
		return 0, err
	}
	got, err := sim.FrameOccupancy(p.policy, sim.BestCase)
	if err != nil {
		return 0, err
	}
	return got - base, nil
}
