package majorcan_test

import (
	"testing"

	"repro/majorcan"
)

func TestMeasureConsistencyPublic(t *testing.T) {
	can, err := majorcan.MeasureConsistency(majorcan.ConsistencyExperiment{
		Protocol: majorcan.StandardCAN(),
		Nodes:    5,
		Frames:   400,
		BerStar:  0.02,
		Seed:     7,
		EOFOnly:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if can.AtomicBroadcast {
		t.Error("standard CAN at this rate must violate Atomic Broadcast")
	}
	if can.DoubleReceptions == 0 {
		t.Error("standard CAN must show double receptions")
	}

	maj, err := majorcan.MeasureConsistency(majorcan.ConsistencyExperiment{
		Protocol: majorcan.MajorCAN(5),
		Nodes:    5,
		Frames:   400,
		BerStar:  0.02,
		Seed:     7,
		EOFOnly:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !maj.AtomicBroadcast {
		t.Errorf("MajorCAN_5 must satisfy Atomic Broadcast:\n%s", maj.Violations)
	}
	if maj.InconsistentOmissions != 0 || maj.DoubleReceptions != 0 {
		t.Errorf("MajorCAN_5: IMOs=%d dups=%d", maj.InconsistentOmissions, maj.DoubleReceptions)
	}
	if _, err := majorcan.MeasureConsistency(majorcan.ConsistencyExperiment{}); err == nil {
		t.Error("unset protocol must be rejected")
	}
}

func TestFrameOverheadPublic(t *testing.T) {
	for _, tt := range []struct {
		m    int
		want int
	}{{3, -1}, {5, 3}, {8, 9}} {
		got, err := majorcan.FrameOverhead(majorcan.MajorCAN(tt.m))
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("m=%d overhead = %d bits, want 2m-7 = %d", tt.m, got, tt.want)
		}
	}
	if got, err := majorcan.FrameOverhead(majorcan.StandardCAN()); err != nil || got != 0 {
		t.Errorf("CAN against itself = %d,%v want 0,nil", got, err)
	}
	if _, err := majorcan.FrameOverhead(majorcan.Protocol{}); err == nil {
		t.Error("unset protocol must be rejected")
	}
}
