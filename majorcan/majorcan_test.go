package majorcan_test

import (
	"strings"
	"testing"

	"repro/majorcan"
)

func TestBusBroadcast(t *testing.T) {
	for _, proto := range []majorcan.Protocol{
		majorcan.StandardCAN(), majorcan.MinorCAN(), majorcan.MajorCAN(5),
	} {
		t.Run(proto.Name(), func(t *testing.T) {
			bus, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 4, Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			msg := majorcan.Message{ID: 0x42, Data: []byte{1, 2, 3}}
			if err := bus.Send(0, msg); err != nil {
				t.Fatal(err)
			}
			if !bus.Run(majorcan.DefaultSlotBudget) {
				t.Fatal("no quiescence")
			}
			if bus.TxSuccesses(0) != 1 {
				t.Errorf("tx successes = %d, want 1", bus.TxSuccesses(0))
			}
			for i := 1; i < bus.Nodes(); i++ {
				if n := bus.DeliveryCount(i, msg); n != 1 {
					t.Errorf("station %d delivered %d, want 1", i, n)
				}
			}
		})
	}
}

func TestBusValidation(t *testing.T) {
	if _, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 4}); err == nil {
		t.Error("unset protocol must be rejected")
	}
	if _, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 1, Protocol: majorcan.StandardCAN()}); err == nil {
		t.Error("single node must be rejected")
	}
	if _, err := majorcan.NewMajorCAN(2); err == nil {
		t.Error("m=2 must be rejected")
	}
	bus, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 3, Protocol: majorcan.StandardCAN()})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(9, majorcan.Message{ID: 1}); err == nil {
		t.Error("out-of-range station must be rejected")
	}
	if err := bus.Send(0, majorcan.Message{ID: 0x900}); err == nil {
		t.Error("invalid message must be rejected")
	}
}

func TestBusDisturbView(t *testing.T) {
	// Reproduce Fig. 3a through the public API: disturb the receivers' view
	// at the last-but-one EOF bit and the transmitter's at the last bit.
	bus, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 5, Protocol: majorcan.StandardCAN()})
	if err != nil {
		t.Fatal(err)
	}
	bus.DisturbView(1, 6, 1)
	bus.DisturbView(2, 6, 1)
	bus.DisturbView(0, 7, 1)
	msg := majorcan.Message{ID: 0x100, Data: []byte{0xA5}}
	if err := bus.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	if !bus.Run(majorcan.DefaultSlotBudget) {
		t.Fatal("no quiescence")
	}
	if bus.DeliveryCount(1, msg) != 0 || bus.DeliveryCount(3, msg) != 1 {
		t.Errorf("expected the Fig. 3a omission, got %d/%d at stations 1/3",
			bus.DeliveryCount(1, msg), bus.DeliveryCount(3, msg))
	}
}

func TestBusCrashAndState(t *testing.T) {
	bus, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 3, Protocol: majorcan.MajorCAN(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got := bus.State(2); got != majorcan.ErrorActive {
		t.Errorf("initial state = %v, want error-active", got)
	}
	bus.Crash(2)
	if got := bus.State(2); got != majorcan.SwitchedOff {
		t.Errorf("state after crash = %v, want switched-off", got)
	}
	msg := majorcan.Message{ID: 7, Data: []byte{7}}
	if err := bus.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	if !bus.Run(majorcan.DefaultSlotBudget) {
		t.Fatal("no quiescence")
	}
	if bus.DeliveryCount(1, msg) != 1 || bus.DeliveryCount(2, msg) != 0 {
		t.Error("crashed station must not deliver; healthy station must")
	}
}

func TestRandomErrorsOnPublicBus(t *testing.T) {
	bus, err := majorcan.NewBus(majorcan.BusConfig{
		Nodes: 4, Protocol: majorcan.MajorCAN(5), BerStar: 2e-4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := bus.Send(i%4, majorcan.Message{ID: uint32(0x100 + i), Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if !bus.Run(majorcan.DefaultSlotBudget) {
		t.Fatal("no quiescence")
	}
	// Every message reaches the three receivers exactly once under
	// MajorCAN despite the random errors.
	total := 0
	for i := 0; i < 4; i++ {
		total += len(bus.DeliveredAt(i))
	}
	if total != 20*3 {
		t.Errorf("total deliveries = %d, want 60", total)
	}
}

func TestTable1Public(t *testing.T) {
	rows := majorcan.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NewPerHour < rows[0].OldPerHour {
		t.Error("the new scenario must dominate")
	}
}

func TestRequiredTolerancePublic(t *testing.T) {
	m, err := majorcan.RequiredTolerance(1e-4, majorcan.SafetyReference)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("required m at ber=1e-4 = %d, want 5 (the paper's proposal)", m)
	}
}

func TestReplayFigurePublic(t *testing.T) {
	res, err := majorcan.ReplayFigure("3a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inconsistent {
		t.Error("Fig. 3a must be inconsistent")
	}
	if !strings.Contains(res.Timeline, "D") {
		t.Error("timeline must show driven flags")
	}
	if _, err := majorcan.ReplayFigure("9z"); err == nil {
		t.Error("unknown figure must error")
	}
	res5, err := majorcan.ReplayFigure("5")
	if err != nil {
		t.Fatal(err)
	}
	if res5.Inconsistent || res5.DoubleReception {
		t.Error("Fig. 5 must be consistent")
	}
}

func TestReplayNewScenarioPublic(t *testing.T) {
	bad, err := majorcan.ReplayNewScenario(majorcan.MinorCAN())
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Inconsistent {
		t.Error("MinorCAN must fail the new scenario")
	}
	good, err := majorcan.ReplayNewScenario(majorcan.MajorCAN(5))
	if err != nil {
		t.Fatal(err)
	}
	if good.Inconsistent {
		t.Error("MajorCAN must pass the new scenario")
	}
	if _, err := majorcan.ReplayNewScenario(majorcan.Protocol{}); err == nil {
		t.Error("zero protocol must error")
	}
}

func TestVerifyExhaustivePublic(t *testing.T) {
	report, ok, err := majorcan.VerifyExhaustive(majorcan.MajorCAN(5), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("MajorCAN_5 single-flip space must be consistent:\n%s", report)
	}
	_, ok, err = majorcan.VerifyExhaustive(majorcan.StandardCAN(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("standard CAN single-flip space must contain violations")
	}
}

func TestMessageEqualAndString(t *testing.T) {
	a := majorcan.Message{ID: 5, Data: []byte{1}}
	b := majorcan.Message{ID: 5, Data: []byte{1}}
	if !a.Equal(b) {
		t.Error("identical messages must be equal")
	}
	b.Data = []byte{2}
	if a.Equal(b) {
		t.Error("different payloads must not be equal")
	}
	if !strings.Contains(a.String(), "0x5") {
		t.Errorf("String() = %q", a.String())
	}
}
