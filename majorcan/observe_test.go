package majorcan_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/majorcan"
)

// TestBusTelemetry drives a bus with an event log and a metrics registry
// attached and checks the public observability surface end to end.
func TestBusTelemetry(t *testing.T) {
	log := majorcan.NewEventLog()
	metrics := majorcan.NewMetrics()
	bus, err := majorcan.NewBus(majorcan.BusConfig{
		Nodes:    4,
		Protocol: majorcan.MajorCAN(5),
		Events:   log,
		Metrics:  metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := majorcan.Message{ID: 0x123, Data: []byte("hi")}
	if err := bus.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	if !bus.Run(majorcan.DefaultSlotBudget) {
		t.Fatal("bus did not quiesce")
	}

	if got := log.Count(majorcan.EventFrameStart); got != 1 {
		t.Errorf("frame-start events = %d, want 1", got)
	}
	// The transmitter and the three receivers each accept the frame.
	if got := log.Count(majorcan.EventFrameAccepted); got != 4 {
		t.Errorf("frame-accepted events = %d, want 4", got)
	}

	snap := majorcan.SnapshotMetrics(metrics, 0)
	if snap.Policy != "MajorCAN_5" {
		t.Errorf("metrics policy = %q, want MajorCAN_5", snap.Policy)
	}
	if snap.FramesStarted != 1 || snap.FramesAccepted != 4 {
		t.Errorf("metrics counters wrong: started=%d accepted=%d", snap.FramesStarted, snap.FramesAccepted)
	}

	var buf bytes.Buffer
	if err := majorcan.WriteEventsJSONL(&buf, 7, log.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != log.Len() {
		t.Errorf("JSONL lines = %d, want %d", len(lines), log.Len())
	}
	if !strings.Contains(lines[0], `"run":7`) || !strings.Contains(lines[0], `"kind":"frame-start"`) {
		t.Errorf("unexpected first JSONL line: %s", lines[0])
	}
}

// TestBusTelemetryCustomSink checks that a plain function works as an
// event sink on the public API.
func TestBusTelemetryCustomSink(t *testing.T) {
	var kinds []majorcan.Kind
	bus, err := majorcan.NewBus(majorcan.BusConfig{
		Nodes:    2,
		Protocol: majorcan.StandardCAN(),
		Events:   majorcan.SinkFunc(func(e majorcan.Event) { kinds = append(kinds, e.Kind) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(1, majorcan.Message{ID: 9}); err != nil {
		t.Fatal(err)
	}
	if !bus.Run(majorcan.DefaultSlotBudget) {
		t.Fatal("bus did not quiesce")
	}
	if len(kinds) == 0 {
		t.Fatal("custom sink saw no events")
	}
	if kinds[0] != majorcan.EventFrameStart {
		t.Errorf("first event = %v, want frame-start", kinds[0])
	}
}
