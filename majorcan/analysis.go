package majorcan

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/scenario"
	"repro/internal/verify"
)

// Model exposes the paper's probabilistic model (Section 4).
type Model = analytic.Params

// ReferenceModel returns the paper's Table 1 configuration (32 nodes,
// 1 Mbps, 90% load, 110-bit frames) at the given bit error rate.
func ReferenceModel(ber float64) Model { return analytic.Reference(ber) }

// Table1 computes the paper's Table 1 for its three bit error rates.
func Table1() []analytic.Table1Row { return analytic.Table1() }

// RequiredTolerance returns the smallest MajorCAN m whose residual rate of
// beyond-tolerance frames stays below target incidents/hour at the given
// bit error rate (paper reference configuration).
func RequiredTolerance(ber, target float64) (int, error) {
	return analytic.Reference(ber).RequiredM(target, 64)
}

// SafetyReference is the aerospace safety number the paper compares
// against: 1e-9 incidents/hour.
const SafetyReference = analytic.SafetyReference

// ScenarioResult is the outcome of a replayed paper scenario.
type ScenarioResult struct {
	// Name identifies the scenario.
	Name string
	// Summary is a one-paragraph human-readable verdict.
	Summary string
	// Inconsistent reports an inconsistent message omission (the Agreement
	// violation the paper analyses).
	Inconsistent bool
	// DoubleReception reports an At-most-once violation.
	DoubleReception bool
	// Timeline is the per-node bit timeline around the end of frame, in
	// the style of the paper's figures.
	Timeline string
}

func wrapOutcome(out *scenario.Outcome) ScenarioResult {
	res := ScenarioResult{
		Name:            out.Name,
		Summary:         out.Summary(),
		Inconsistent:    out.IMO,
		DoubleReception: out.DoubleReception,
	}
	if first, last, ok := out.Recorder.EOFWindow(0, 1); ok {
		from := uint64(0)
		if first > 8 {
			from = first - 8
		}
		res.Timeline = out.Recorder.Render(from, last+40)
	}
	return res
}

// ReplayNewScenario replays the paper's Fig. 3 disturbance pattern (the
// two-error scenario that defeats standard CAN and MinorCAN) under the
// given protocol.
func ReplayNewScenario(p Protocol) (ScenarioResult, error) {
	if !p.valid() {
		return ScenarioResult{}, fmt.Errorf("majorcan: protocol not set")
	}
	out, err := scenario.NewScenario(p.policy)
	if err != nil {
		return ScenarioResult{}, err
	}
	return wrapOutcome(out), nil
}

// ReplayFigure replays one of the paper's figures: "1a", "1b", "1c",
// "3a", "3b" or "5" (Fig. 5 uses MajorCAN_5; Figs. 1 use standard CAN and
// Figs. 3 their respective protocols, as in the paper).
func ReplayFigure(fig string) (ScenarioResult, error) {
	var out *scenario.Outcome
	var err error
	switch fig {
	case "1a":
		out, err = scenario.Fig1a(StandardCAN().policy)
	case "1b":
		out, err = scenario.Fig1b(StandardCAN().policy)
	case "1c":
		out, err = scenario.Fig1c(StandardCAN().policy)
	case "3a":
		out, err = scenario.Fig3a()
	case "3b":
		out, err = scenario.Fig3b()
	case "5":
		out, err = scenario.Fig5(5)
	default:
		return ScenarioResult{}, fmt.Errorf("majorcan: unknown figure %q", fig)
	}
	if err != nil {
		return ScenarioResult{}, err
	}
	return wrapOutcome(out), nil
}

// VerifyExhaustive enumerates every fault pattern of up to maxFlips
// view-bit flips over the protocol's end-of-frame decision region on a
// bus with the given number of stations and checks consistency. It
// returns a human-readable report and whether every pattern was
// consistent.
func VerifyExhaustive(p Protocol, stations, maxFlips int) (report string, consistent bool, err error) {
	if !p.valid() {
		return "", false, fmt.Errorf("majorcan: protocol not set")
	}
	rep, err := verify.Exhaustive(verify.Config{
		Policy:   p.policy,
		Stations: stations,
		MaxFlips: maxFlips,
	})
	if err != nil {
		return "", false, err
	}
	return rep.Summary(), rep.Consistent(), nil
}
