package majorcan_test

import (
	"strings"
	"testing"

	"repro/majorcan"
)

func TestChaosCampaignFindsCANInconsistency(t *testing.T) {
	findings, err := majorcan.RunChaosCampaign(majorcan.ChaosCampaignConfig{
		Protocol:    majorcan.StandardCAN(),
		Nodes:       5,
		Trials:      200,
		MaxFaults:   4,
		Seed:        12,
		FaultKinds:  []string{"view-flip"},
		StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("standard CAN campaign must find a violation")
	}
	f := findings[0]
	if len(f.Faults) == 0 || len(f.Violations) == 0 {
		t.Fatalf("finding incomplete: %+v", f)
	}
	if len(f.Faults) > 3 {
		t.Errorf("shrunk script has %d faults, want <= 3", len(f.Faults))
	}
	violations, matches, err := majorcan.ReplayChaosArtifact(f.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if !matches {
		t.Error("artifact must replay bit-for-bit")
	}
	if strings.Join(violations, "\n") != strings.Join(f.Violations, "\n") {
		t.Errorf("replayed violations %v != recorded %v", violations, f.Violations)
	}
}

func TestChaosCampaignRejectsMissingProtocol(t *testing.T) {
	if _, err := majorcan.RunChaosCampaign(majorcan.ChaosCampaignConfig{Nodes: 5}); err == nil {
		t.Error("missing protocol must be rejected")
	}
}

func TestReplayChaosArtifactRejectsGarbage(t *testing.T) {
	if _, _, err := majorcan.ReplayChaosArtifact([]byte("not json")); err == nil {
		t.Error("garbage artifact must be rejected")
	}
}
