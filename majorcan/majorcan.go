// Package majorcan is the public API of the MajorCAN reproduction: a
// bit-accurate CAN bus simulator with pluggable end-of-frame protocol
// variants (standard CAN, MinorCAN, MajorCAN_m), fault injection, Atomic
// Broadcast property checking, the paper's probabilistic model, and
// exhaustive fault-space verification.
//
// # Protocols
//
// Three protocol variants are available:
//
//	majorcan.StandardCAN()   // ISO 11898 behaviour, last-bit-of-EOF rule
//	majorcan.MinorCAN()      // the paper's minimal fix (Primary_error rule)
//	majorcan.MajorCAN(m)     // the paper's contribution, tolerating m errors
//
// # Buses
//
// A Bus couples N simulated controllers:
//
//	bus, err := majorcan.NewBus(majorcan.BusConfig{Nodes: 4, Protocol: majorcan.MajorCAN(5)})
//	bus.Send(0, majorcan.Message{ID: 0x123, Data: []byte("hi")})
//	bus.Run(majorcan.DefaultSlotBudget)
//	fmt.Println(bus.DeliveredAt(1))
//
// Disturbances — the paper's spatial error model or scripted single-bit
// view flips — are injected through BusConfig or Bus methods. See the
// examples directory for complete programs.
package majorcan

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/frame"
	"repro/internal/node"
	"repro/internal/sim"
)

// Protocol selects the end-of-frame behaviour of every controller on a
// bus. Construct values with StandardCAN, MinorCAN or MajorCAN.
type Protocol struct {
	policy node.EOFPolicy
}

// StandardCAN returns the ISO 11898 protocol with the last-bit-of-EOF
// rule — the baseline whose inconsistencies the paper analyses.
func StandardCAN() Protocol { return Protocol{policy: core.NewStandard()} }

// MinorCAN returns the paper's first modification: consistent handling of
// errors in the last EOF bit via the Primary_error criterion. It fixes
// every single-error scenario but not the paper's new two-error scenarios.
func MinorCAN() Protocol { return Protocol{policy: core.NewMinorCAN()} }

// MajorCAN returns the paper's main contribution with error tolerance m
// (the paper proposes m = 5). It panics if m < 3; use NewMajorCAN to
// handle the error.
func MajorCAN(m int) Protocol { return Protocol{policy: core.MustMajorCAN(m)} }

// NewMajorCAN is MajorCAN with error reporting instead of panicking.
func NewMajorCAN(m int) (Protocol, error) {
	p, err := core.NewMajorCAN(m)
	if err != nil {
		return Protocol{}, err
	}
	return Protocol{policy: p}, nil
}

// Name returns the protocol's name ("CAN", "MinorCAN", "MajorCAN_5", ...).
func (p Protocol) Name() string {
	if p.policy == nil {
		return "<none>"
	}
	return p.policy.Name()
}

// valid reports whether the protocol was constructed properly.
func (p Protocol) valid() bool { return p.policy != nil }

// Message is an application-level CAN message.
type Message struct {
	// ID is the frame identifier (11-bit standard or 29-bit extended).
	// Lower IDs win arbitration.
	ID uint32
	// Extended selects the 29-bit identifier format.
	Extended bool
	// Remote marks a remote transmission request (no data).
	Remote bool
	// Data is the payload, at most 8 bytes.
	Data []byte
}

func (m Message) toFrame() *frame.Frame {
	f := &frame.Frame{ID: m.ID, Remote: m.Remote, Data: append([]byte(nil), m.Data...)}
	if m.Extended {
		f.Format = frame.Extended
	}
	return f
}

func fromFrame(f *frame.Frame) Message {
	return Message{
		ID:       f.ID,
		Extended: f.EffectiveFormat() == frame.Extended,
		Remote:   f.Remote,
		Data:     append([]byte(nil), f.Data...),
	}
}

// Equal reports whether two messages are identical.
func (m Message) Equal(o Message) bool {
	return m.toFrame().Equal(o.toFrame())
}

func (m Message) String() string { return m.toFrame().String() }

// Delivery is one message handed to a node's application layer.
type Delivery struct {
	// Slot is the bit time of the delivery.
	Slot uint64
	// Message is the delivered message.
	Message Message
}

// DefaultSlotBudget is a generous bound for Run calls covering several
// frame transmissions with retries.
const DefaultSlotBudget = 100000

// BusConfig configures a simulated bus.
type BusConfig struct {
	// Nodes is the number of stations (>= 2).
	Nodes int
	// Protocol applies to every station.
	Protocol Protocol
	// BerStar enables the paper's spatial random error model with the
	// given per-node per-bit view-flip probability (ber* = ber/N).
	BerStar float64
	// Seed seeds the random error model.
	Seed int64
	// WarningSwitchOff disconnects nodes at the warning limit (96), the
	// paper's recommended policy against the error-passive state.
	WarningSwitchOff bool
	// Events, if non-nil, receives every protocol event (frame starts,
	// error flags, retransmissions, verdicts) as the simulation advances.
	Events Sink
	// Metrics, if non-nil, accumulates protocol counters and histograms;
	// it is labelled with the protocol name when the bus is built.
	Metrics *Metrics
	// Engine selects the bit-slot execution engine: "" or "fast" for the
	// packed fast engine (the default; bit-identical traces), "reference"
	// for the plain per-slot loop.
	Engine string
}

// Bus is a simulated CAN bus with recorded deliveries.
type Bus struct {
	cluster *sim.Cluster
}

// NewBus builds a bus.
func NewBus(cfg BusConfig) (*Bus, error) {
	if !cfg.Protocol.valid() {
		return nil, fmt.Errorf("majorcan: BusConfig.Protocol not set (use StandardCAN, MinorCAN or MajorCAN)")
	}
	opts := sim.ClusterOptions{
		Nodes:            cfg.Nodes,
		Policy:           cfg.Protocol.policy,
		WarningSwitchOff: cfg.WarningSwitchOff,
		Engine:           sim.EngineChoice(cfg.Engine),
	}
	busTelemetry(cfg, &opts)
	cluster, err := sim.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	if cfg.BerStar > 0 {
		cluster.Net.AddDisturber(errmodel.NewRandom(cfg.BerStar, cfg.Seed))
	}
	return &Bus{cluster: cluster}, nil
}

// Send queues a message for transmission at the given station.
func (b *Bus) Send(station int, m Message) error {
	if station < 0 || station >= len(b.cluster.Nodes) {
		return fmt.Errorf("majorcan: station %d out of range", station)
	}
	return b.cluster.Nodes[station].Enqueue(m.toFrame())
}

// Run simulates until the bus is idle and all queues are drained, or the
// slot budget is exhausted; it reports whether quiescence was reached.
func (b *Bus) Run(maxSlots int) bool {
	return b.cluster.RunUntilQuiet(maxSlots)
}

// Step advances the simulation by exactly one bit slot.
func (b *Bus) Step() { b.cluster.Net.Step() }

// Slot returns the current bit time.
func (b *Bus) Slot() uint64 { return b.cluster.Net.Slot() }

// Nodes returns the number of stations.
func (b *Bus) Nodes() int { return len(b.cluster.Nodes) }

// DeliveredAt returns the messages delivered at a station, in order.
func (b *Bus) DeliveredAt(station int) []Delivery {
	if station < 0 || station >= len(b.cluster.Nodes) {
		return nil
	}
	ds := b.cluster.Deliveries[station]
	out := make([]Delivery, len(ds))
	for i, d := range ds {
		out[i] = Delivery{Slot: d.Slot, Message: fromFrame(d.Frame)}
	}
	return out
}

// DeliveryCount returns how many copies of m a station delivered.
func (b *Bus) DeliveryCount(station int, m Message) int {
	return b.cluster.DeliveryCount(station, m.toFrame())
}

// TxSuccesses returns how many transmissions a station completed.
func (b *Bus) TxSuccesses(station int) uint64 {
	return b.cluster.Nodes[station].TxSuccesses()
}

// Crash makes a station fail silently from now on.
func (b *Bus) Crash(station int) { b.cluster.Nodes[station].Crash() }

// NodeState describes a station's fault confinement condition.
type NodeState string

// Node states.
const (
	ErrorActive  NodeState = "error-active"
	ErrorPassive NodeState = "error-passive"
	BusOff       NodeState = "bus-off"
	SwitchedOff  NodeState = "switched-off"
)

// State returns a station's fault confinement state.
func (b *Bus) State(station int) NodeState {
	switch b.cluster.Nodes[station].Mode() {
	case node.ErrorPassive:
		return ErrorPassive
	case node.BusOff:
		return BusOff
	case node.SwitchedOff:
		return SwitchedOff
	default:
		return ErrorActive
	}
}

// DisturbView flips one station's view of the bus at a specific position
// of the end-of-frame region: position is 1-based relative to the first
// EOF bit, attempt counts transmissions (1 = the first). This is the
// vocabulary of the paper's figures.
func (b *Bus) DisturbView(station, position, attempt int) {
	b.cluster.Net.AddDisturber(errmodel.NewScript(
		errmodel.AtEOFBit([]int{station}, position, attempt),
	))
}

// Level re-exports the two bus levels for advanced use.
type Level = bitstream.Level

// Bus levels.
const (
	Dominant  = bitstream.Dominant
	Recessive = bitstream.Recessive
)
