package majorcan

import (
	"net/http"

	"repro/internal/serve"
)

// The serving layer re-exported: applications can embed the simulation
// service, or talk to one, without importing internal packages. The
// mcservd and mcctl commands are thin wrappers over this surface.

// JobSpec is the canonical job description the simulation service
// accepts: exactly one of a sweep, campaign, verify or script payload.
type JobSpec = serve.JobSpec

// JobDigest is a job's content address: the SHA-256 of its normalized
// canonical JSON. Equal digests mean equal jobs — and, the simulator
// being deterministic, equal results.
type JobDigest = serve.Digest

// DecodeJobSpec strictly parses, normalizes and validates a job spec.
func DecodeJobSpec(data []byte) (*JobSpec, error) { return serve.DecodeSpec(data) }

// Job kinds accepted by the service.
const (
	JobSweep    = serve.KindSweep
	JobCampaign = serve.KindCampaign
	JobVerify   = serve.KindVerify
	JobScript   = serve.KindScript
)

// ServiceConfig parameterises an embedded simulation service.
type ServiceConfig = serve.Config

// Scheduler is the service core: sharded workers, single-flight
// coalescing and the content-addressed result cache.
type Scheduler = serve.Scheduler

// NewScheduler starts a scheduler with the given configuration.
func NewScheduler(cfg ServiceConfig) (*Scheduler, error) { return serve.NewScheduler(cfg) }

// NewServiceHandler wraps a scheduler in the /v1 HTTP API.
func NewServiceHandler(s *Scheduler) http.Handler { return serve.NewServer(s) }

// ServiceClient talks to a simulation service over its /v1 API.
type ServiceClient = serve.Client

// NewServiceClient creates a client for the given service root URL.
func NewServiceClient(baseURL string) *ServiceClient { return serve.NewClient(baseURL) }

// JobStatus is a job's serialisable state as reported by the service.
type JobStatus = serve.JobStatus

// ServiceStats is the full scheduler statistics document (/v1/stats).
type ServiceStats = serve.Stats
